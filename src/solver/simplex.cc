#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/matrix.h"

namespace paws {

namespace {

constexpr double kPivotEps = 1e-9;

bool IsFinite(double bound) { return std::fabs(bound) < kLpInfinity * 0.99; }

/// Dense bounded-variable primal simplex over the standard-form system
///   A x = b,   l <= x <= u
/// built from the model by adding one slack per inequality row and one
/// artificial per row (phase 1 basis). The tableau holds B^{-1} A.
class SimplexSolver {
 public:
  SimplexSolver(const LinearProgram& lp, const SimplexOptions& options)
      : lp_(lp), options_(options) {}

  StatusOr<LpSolution> Solve();

 private:
  enum class StepResult { kOptimal, kUnbounded, kPivoted };

  void BuildStandardForm();
  void SetupInitialBasis();
  StepResult Step(const std::vector<double>& cost, bool use_bland);
  StatusOr<SolveStatus> RunPhase(const std::vector<double>& cost,
                                 bool is_phase_one);
  double VarValue(int j) const;

  const LinearProgram& lp_;
  SimplexOptions options_;

  int m_ = 0;            // rows
  int n_ = 0;            // total columns (struct + slack + artificial)
  int n_struct_ = 0;
  int first_artificial_ = 0;
  Matrix tableau_;       // m x n, equals B^{-1} A
  std::vector<double> rhs_;  // original b (after slack insertion)
  std::vector<double> lower_, upper_;
  std::vector<int> basis_;       // var basic in each row
  std::vector<int> basis_row_;   // var -> row or -1
  std::vector<double> xb_;       // values of basic variables per row
  // Nonbasic state: 'L' at lower, 'U' at upper, 'F' free at 0.
  std::vector<char> nb_state_;
  long iterations_ = 0;
};

void SimplexSolver::BuildStandardForm() {
  m_ = lp_.num_constraints();
  n_struct_ = lp_.num_variables();
  // Count slacks.
  int n_slack = 0;
  for (int i = 0; i < m_; ++i) {
    if (lp_.relation(i) != Relation::kEqual) ++n_slack;
  }
  first_artificial_ = n_struct_ + n_slack;
  n_ = first_artificial_ + m_;

  tableau_ = Matrix(m_, n_);
  rhs_.assign(m_, 0.0);
  lower_.assign(n_, 0.0);
  upper_.assign(n_, kLpInfinity);
  for (int j = 0; j < n_struct_; ++j) {
    lower_[j] = lp_.lower(j);
    upper_[j] = lp_.upper(j);
  }

  int slack = n_struct_;
  for (int i = 0; i < m_; ++i) {
    for (const auto& [var, coef] : lp_.constraint_terms(i)) {
      tableau_(i, var) += coef;
    }
    rhs_[i] = lp_.rhs(i);
    switch (lp_.relation(i)) {
      case Relation::kLessEqual:
        tableau_(i, slack++) = 1.0;
        break;
      case Relation::kGreaterEqual:
        tableau_(i, slack++) = -1.0;
        break;
      case Relation::kEqual:
        break;
    }
  }
  // Artificial columns are filled in SetupInitialBasis (sign depends on the
  // initial residual).
}

void SimplexSolver::SetupInitialBasis() {
  basis_.assign(m_, -1);
  basis_row_.assign(n_, -1);
  xb_.assign(m_, 0.0);
  nb_state_.assign(n_, 'L');

  // Nonbasic structural/slack variables start at a finite bound (preferring
  // the one of smaller magnitude) or 0 if free.
  for (int j = 0; j < first_artificial_; ++j) {
    if (IsFinite(lower_[j]) && IsFinite(upper_[j])) {
      nb_state_[j] =
          std::fabs(lower_[j]) <= std::fabs(upper_[j]) ? 'L' : 'U';
    } else if (IsFinite(lower_[j])) {
      nb_state_[j] = 'L';
    } else if (IsFinite(upper_[j])) {
      nb_state_[j] = 'U';
    } else {
      nb_state_[j] = 'F';
    }
  }

  // Residual r = b - A x_N decides each artificial's sign so its initial
  // value is non-negative.
  for (int i = 0; i < m_; ++i) {
    double r = rhs_[i];
    for (int j = 0; j < first_artificial_; ++j) {
      const double a = tableau_(i, j);
      if (a == 0.0) continue;
      double v = 0.0;
      if (nb_state_[j] == 'L') v = lower_[j];
      if (nb_state_[j] == 'U') v = upper_[j];
      r -= a * v;
    }
    const int art = first_artificial_ + i;
    tableau_(i, art) = r >= 0.0 ? 1.0 : -1.0;
    basis_[i] = art;
    basis_row_[art] = i;
    xb_[i] = std::fabs(r);
    lower_[art] = 0.0;
    upper_[art] = kLpInfinity;
  }

  // Normalize each row so the basic (artificial) column has coefficient +1.
  for (int i = 0; i < m_; ++i) {
    if (tableau_(i, first_artificial_ + i) < 0.0) {
      double* row = tableau_.Row(i);
      for (int j = 0; j < n_; ++j) row[j] = -row[j];
    }
  }
}

double SimplexSolver::VarValue(int j) const {
  if (basis_row_[j] >= 0) return xb_[basis_row_[j]];
  switch (nb_state_[j]) {
    case 'L':
      return lower_[j];
    case 'U':
      return upper_[j];
    default:
      return 0.0;
  }
}

SimplexSolver::StepResult SimplexSolver::Step(const std::vector<double>& cost,
                                              bool use_bland) {
  const double tol = options_.optimality_tolerance;

  // Precompute c_B once per iteration; reduced costs in one sweep, O(mn).
  std::vector<double> cb(m_);
  for (int i = 0; i < m_; ++i) cb[i] = cost[basis_[i]];
  std::vector<double> z(n_, 0.0);
  for (int i = 0; i < m_; ++i) {
    const double c = cb[i];
    if (c == 0.0) continue;
    const double* row = tableau_.Row(i);
    for (int j = 0; j < n_; ++j) z[j] += c * row[j];
  }

  int entering = -1;
  int direction = +1;  // +1: increase entering var; -1: decrease
  double best_score = tol;
  for (int j = 0; j < n_; ++j) {
    if (basis_row_[j] >= 0) continue;
    if (lower_[j] == upper_[j]) continue;  // fixed variable
    const double rc = cost[j] - z[j];
    const char state = nb_state_[j];
    // Improving directions for a maximization problem.
    const bool can_increase = (state == 'L' || state == 'F') && rc > tol;
    const bool can_decrease = (state == 'U' || state == 'F') && rc < -tol;
    if (!can_increase && !can_decrease) continue;
    if (use_bland) {
      entering = j;
      direction = can_increase ? +1 : -1;
      break;
    }
    const double score = std::fabs(rc);
    if (score > best_score) {
      best_score = score;
      entering = j;
      direction = can_increase ? +1 : -1;
    }
  }
  if (entering < 0) return StepResult::kOptimal;

  // Ratio test: entering moves by `direction * t`, basic variable i moves
  // by -direction * T(i, entering) * t and must stay within its bounds.
  double t_max = kLpInfinity;
  // Bound flip limit from the entering variable's own range.
  if (IsFinite(lower_[entering]) && IsFinite(upper_[entering])) {
    t_max = upper_[entering] - lower_[entering];
  }
  int leave_row = -1;
  char leave_to = 'L';
  double best_pivot_mag = 0.0;
  for (int i = 0; i < m_; ++i) {
    const double coef = direction * tableau_(i, entering);
    if (std::fabs(coef) < kPivotEps) continue;
    const int bvar = basis_[i];
    double limit;
    char to;
    if (coef > 0.0) {
      if (!IsFinite(lower_[bvar])) continue;
      limit = (xb_[i] - lower_[bvar]) / coef;
      to = 'L';
    } else {
      if (!IsFinite(upper_[bvar])) continue;
      limit = (upper_[bvar] - xb_[i]) / (-coef);
      to = 'U';
    }
    limit = std::max(0.0, limit);
    if (limit > t_max + 1e-12) continue;
    const double mag = std::fabs(tableau_(i, entering));
    const bool strictly_smaller = limit < t_max - 1e-12;
    // Ties: Bland's rule picks the smallest basic variable index
    // (anti-cycling); otherwise prefer the largest pivot magnitude
    // (numerical stability).
    bool take = strictly_smaller || leave_row < 0;
    if (!take) {
      take = use_bland ? basis_[i] < basis_[leave_row]
                       : mag > best_pivot_mag;
    }
    if (take) {
      t_max = std::min(t_max, limit);
      leave_row = i;
      leave_to = to;
      best_pivot_mag = mag;
    }
  }

  if (!IsFinite(t_max) && leave_row < 0) return StepResult::kUnbounded;

  const double t = std::max(0.0, t_max);
  // Update basic values.
  for (int i = 0; i < m_; ++i) {
    const double coef = direction * tableau_(i, entering);
    if (coef != 0.0) xb_[i] -= coef * t;
  }

  if (leave_row < 0) {
    // Pure bound flip: the entering variable jumps to its other bound.
    nb_state_[entering] = direction > 0 ? 'U' : 'L';
    return StepResult::kPivoted;
  }

  // Pivot: entering becomes basic in leave_row.
  const double entering_start = VarValue(entering);
  const double entering_value = entering_start + direction * t;
  const int leaving = basis_[leave_row];

  const double pivot = tableau_(leave_row, entering);
  CheckOrDie(std::fabs(pivot) > kPivotEps * 0.5, "simplex: zero pivot");
  double* prow = tableau_.Row(leave_row);
  const double inv = 1.0 / pivot;
  for (int j = 0; j < n_; ++j) prow[j] *= inv;
  for (int i = 0; i < m_; ++i) {
    if (i == leave_row) continue;
    const double f = tableau_(i, entering);
    if (f == 0.0) continue;
    double* row = tableau_.Row(i);
    for (int j = 0; j < n_; ++j) row[j] -= f * prow[j];
    row[entering] = 0.0;  // exact zero against drift
  }
  prow[entering] = 1.0;

  basis_[leave_row] = entering;
  basis_row_[entering] = leave_row;
  basis_row_[leaving] = -1;
  nb_state_[leaving] = leave_to;
  xb_[leave_row] = entering_value;
  return StepResult::kPivoted;
}

StatusOr<SolveStatus> SimplexSolver::RunPhase(const std::vector<double>& cost,
                                              bool is_phase_one) {
  const long cap = options_.max_iterations > 0
                       ? options_.max_iterations
                       : 200L * (m_ + n_) + 5000L;
  const long bland_after = cap / 2;
  for (long it = 0; it < cap; ++it) {
    ++iterations_;
    const StepResult r = Step(cost, /*use_bland=*/it > bland_after);
    if (r == StepResult::kOptimal) return SolveStatus::kOptimal;
    if (r == StepResult::kUnbounded) {
      if (is_phase_one) {
        return Status::Internal("simplex: phase-1 objective unbounded");
      }
      return SolveStatus::kUnbounded;
    }
  }
  return Status::Internal("simplex: iteration limit reached");
}

StatusOr<LpSolution> SimplexSolver::Solve() {
  BuildStandardForm();
  SetupInitialBasis();

  // Phase 1: maximize -(sum of artificials).
  std::vector<double> phase1_cost(n_, 0.0);
  for (int i = 0; i < m_; ++i) phase1_cost[first_artificial_ + i] = -1.0;
  {
    PAWS_ASSIGN_OR_RETURN(const SolveStatus st, RunPhase(phase1_cost, true));
    (void)st;  // phase 1 is bounded, so the status is always kOptimal
  }
  double artificial_sum = 0.0;
  for (int i = 0; i < m_; ++i) {
    if (basis_[i] >= first_artificial_) artificial_sum += xb_[i];
  }
  LpSolution solution;
  if (artificial_sum > options_.feasibility_tolerance * (1.0 + m_)) {
    solution.status = SolveStatus::kInfeasible;
    solution.simplex_iterations = iterations_;
    return solution;
  }
  // Pin artificials to zero for phase 2.
  for (int i = 0; i < m_; ++i) {
    const int art = first_artificial_ + i;
    lower_[art] = 0.0;
    upper_[art] = 0.0;
    if (basis_row_[art] < 0) nb_state_[art] = 'L';
  }

  // Phase 2: the true objective.
  std::vector<double> cost(n_, 0.0);
  for (int j = 0; j < n_struct_; ++j) cost[j] = lp_.objective(j);
  PAWS_ASSIGN_OR_RETURN(const SolveStatus st, RunPhase(cost, false));
  if (st == SolveStatus::kUnbounded) {
    solution.status = SolveStatus::kUnbounded;
    solution.simplex_iterations = iterations_;
    return solution;
  }

  solution.status = SolveStatus::kOptimal;
  solution.values.resize(n_struct_);
  for (int j = 0; j < n_struct_; ++j) {
    double v = VarValue(j);
    // Clamp tiny numerical drift back into the box.
    if (IsFinite(lower_[j])) v = std::max(v, lp_.lower(j));
    if (IsFinite(upper_[j])) v = std::min(v, lp_.upper(j));
    solution.values[j] = v;
  }
  solution.objective = lp_.ObjectiveValue(solution.values);
  solution.simplex_iterations = iterations_;
  return solution;
}

}  // namespace

StatusOr<LpSolution> SolveLp(const LinearProgram& lp,
                             const SimplexOptions& options) {
  if (lp.num_variables() == 0) {
    return Status::InvalidArgument("SolveLp: no variables");
  }
  SimplexSolver solver(lp, options);
  return solver.Solve();
}

}  // namespace paws
