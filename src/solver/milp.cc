#include "solver/milp.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <queue>
#include <vector>

namespace paws {

namespace {

struct Node {
  // Bound overrides relative to the root problem, as (var, lower, upper).
  std::vector<std::array<double, 2>> bounds;  // indexed by position in vars
  std::vector<int> vars;
  double lp_bound = 0.0;

  bool operator<(const Node& other) const {
    return lp_bound < other.lp_bound;  // max-heap: best bound first
  }
};

// Index of the most fractional integer variable, or -1 if all integral.
int MostFractional(const LinearProgram& lp, const std::vector<double>& x,
                   double tol) {
  int best = -1;
  double best_frac = tol;
  for (int j = 0; j < lp.num_variables(); ++j) {
    if (!lp.is_integer(j)) continue;
    const double f = std::fabs(x[j] - std::round(x[j]));
    if (f > best_frac) {
      // Prefer the variable closest to 0.5 fractional part.
      const double dist_to_half = std::fabs(f - 0.5);
      const double best_dist = std::fabs(best_frac - 0.5);
      if (best < 0 || dist_to_half < best_dist) {
        best = j;
        best_frac = f;
      }
    }
  }
  return best;
}

void ApplyNode(const Node& node, LinearProgram* lp) {
  for (size_t i = 0; i < node.vars.size(); ++i) {
    lp->SetBounds(node.vars[i], node.bounds[i][0], node.bounds[i][1]);
  }
}

void RestoreBounds(const LinearProgram& root, const Node& node,
                   LinearProgram* lp) {
  for (int v : node.vars) {
    lp->SetBounds(v, root.lower(v), root.upper(v));
  }
}

}  // namespace

StatusOr<LpSolution> SolveMilp(const LinearProgram& lp,
                               const MilpOptions& options) {
  if (lp.num_integer_variables() == 0) return SolveLp(lp, options.simplex);

  LinearProgram work = lp;  // bounds are mutated per node and restored

  PAWS_ASSIGN_OR_RETURN(LpSolution root, SolveLp(work, options.simplex));
  if (root.status != SolveStatus::kOptimal) return root;

  LpSolution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  incumbent.objective = -kLpInfinity;
  long total_iterations = root.simplex_iterations;
  int nodes = 1;

  const double int_tol = options.integrality_tolerance;

  auto accept_if_integral = [&](const LpSolution& sol) {
    if (MostFractional(lp, sol.values, int_tol) != -1) return false;
    if (sol.objective > incumbent.objective) {
      incumbent = sol;
      incumbent.status = SolveStatus::kOptimal;
    }
    return true;
  };

  // Diving heuristic: repeatedly fix the most nearly-integral fractional
  // variable to its rounded value and re-solve. Unlike naive rounding this
  // respects coupled integer structures (e.g. SOS2 segment selectors whose
  // sum must be exactly 1), so it reliably seeds an incumbent.
  if (options.use_rounding_heuristic && !accept_if_integral(root)) {
    Node dive;
    LpSolution current = root;
    for (int depth = 0; depth < 4 * lp.num_integer_variables() + 8; ++depth) {
      // Pick the fractional integer variable closest to an integer.
      int pick = -1;
      double best_frac = 1.0;
      for (int j = 0; j < lp.num_variables(); ++j) {
        if (!lp.is_integer(j)) continue;
        bool fixed = false;
        for (size_t i = 0; i < dive.vars.size(); ++i) {
          fixed = fixed || dive.vars[i] == j;
        }
        if (fixed) continue;
        const double f = std::fabs(current.values[j] -
                                   std::round(current.values[j]));
        if (f > int_tol && f < best_frac) {
          best_frac = f;
          pick = j;
        }
      }
      if (pick < 0) break;  // integral (or only fixed vars remain)
      const double r = std::clamp(std::round(current.values[pick]),
                                  lp.lower(pick), lp.upper(pick));
      dive.vars.push_back(pick);
      dive.bounds.push_back({r, r});
      ApplyNode(dive, &work);
      auto dived = SolveLp(work, options.simplex);
      RestoreBounds(lp, dive, &work);
      if (!dived.ok()) break;
      total_iterations += dived->simplex_iterations;
      if (dived->status != SolveStatus::kOptimal) {
        // Infeasible dive: flip the last fix to the other side once.
        const double flipped = r > current.values[pick]
                                   ? std::floor(current.values[pick])
                                   : std::ceil(current.values[pick]);
        dive.bounds.back() = {std::clamp(flipped, lp.lower(pick),
                                         lp.upper(pick)),
                              std::clamp(flipped, lp.lower(pick),
                                         lp.upper(pick))};
        ApplyNode(dive, &work);
        auto retried = SolveLp(work, options.simplex);
        RestoreBounds(lp, dive, &work);
        if (!retried.ok() || retried->status != SolveStatus::kOptimal) break;
        total_iterations += retried->simplex_iterations;
        current = std::move(retried).value();
      } else {
        current = std::move(dived).value();
      }
      if (accept_if_integral(current)) break;
    }
  }

  // Plain rounding as a second chance if the dive found nothing.
  if (options.use_rounding_heuristic &&
      incumbent.status != SolveStatus::kOptimal) {
    // Two attempts: round to nearest, then round down (floors keep
    // packing-style <= constraints feasible when nearest overshoots).
    for (const bool round_down : {false, true}) {
      Node fixed;
      for (int j = 0; j < lp.num_variables(); ++j) {
        if (!lp.is_integer(j)) continue;
        const double raw = round_down ? std::floor(root.values[j] + int_tol)
                                      : std::round(root.values[j]);
        const double r = std::clamp(raw, lp.lower(j), lp.upper(j));
        fixed.vars.push_back(j);
        fixed.bounds.push_back({r, r});
      }
      ApplyNode(fixed, &work);
      auto rounded = SolveLp(work, options.simplex);
      RestoreBounds(lp, fixed, &work);
      if (rounded.ok()) {
        total_iterations += rounded->simplex_iterations;
        if (rounded->status == SolveStatus::kOptimal &&
            accept_if_integral(*rounded)) {
          break;
        }
      }
    }
  }

  std::priority_queue<Node> open;
  {
    Node root_node;
    root_node.lp_bound = root.objective;
    open.push(std::move(root_node));
  }
  // If the root relaxation is already integral we are done.
  if (incumbent.status == SolveStatus::kOptimal &&
      std::fabs(incumbent.objective - root.objective) <=
          options.absolute_gap_tolerance) {
    incumbent.simplex_iterations = total_iterations;
    incumbent.nodes_explored = nodes;
    incumbent.gap = 0.0;
    return incumbent;
  }

  double best_open_bound = root.objective;
  while (!open.empty() && nodes < options.max_nodes) {
    Node node = open.top();
    open.pop();
    best_open_bound = node.lp_bound;
    if (node.lp_bound <=
        incumbent.objective + options.absolute_gap_tolerance) {
      break;  // best-first: every remaining node is dominated
    }

    ApplyNode(node, &work);
    auto solved = SolveLp(work, options.simplex);
    RestoreBounds(lp, node, &work);
    PAWS_RETURN_IF_ERROR(solved.status());
    ++nodes;
    total_iterations += solved->simplex_iterations;
    if (solved->status != SolveStatus::kOptimal) continue;  // pruned
    if (solved->objective <=
        incumbent.objective + options.absolute_gap_tolerance) {
      continue;
    }
    const int frac = MostFractional(lp, solved->values, int_tol);
    if (frac < 0) {
      accept_if_integral(*solved);
      continue;
    }
    // Branch on the fractional variable.
    const double v = solved->values[frac];
    double node_lo = lp.lower(frac), node_hi = lp.upper(frac);
    for (size_t i = 0; i < node.vars.size(); ++i) {
      if (node.vars[i] == frac) {
        node_lo = node.bounds[i][0];
        node_hi = node.bounds[i][1];
      }
    }
    auto make_child = [&](double lo, double hi) {
      Node child = node;
      child.lp_bound = solved->objective;
      bool replaced = false;
      for (size_t i = 0; i < child.vars.size(); ++i) {
        if (child.vars[i] == frac) {
          child.bounds[i] = {lo, hi};
          replaced = true;
        }
      }
      if (!replaced) {
        child.vars.push_back(frac);
        child.bounds.push_back({lo, hi});
      }
      if (lo <= hi) open.push(std::move(child));
    };
    make_child(node_lo, std::floor(v));
    make_child(std::ceil(v), node_hi);
  }

  if (incumbent.status != SolveStatus::kOptimal) {
    // No integral solution found.
    if (open.empty()) {
      LpSolution out;
      out.status = SolveStatus::kInfeasible;
      out.simplex_iterations = total_iterations;
      out.nodes_explored = nodes;
      return out;
    }
    return Status::ResourceExhausted(
        "SolveMilp: node limit reached without an incumbent");
  }

  incumbent.simplex_iterations = total_iterations;
  incumbent.nodes_explored = nodes;
  if (!open.empty() && nodes >= options.max_nodes) {
    incumbent.status = SolveStatus::kFeasibleLimit;
    incumbent.gap = std::max(0.0, best_open_bound - incumbent.objective);
  } else {
    incumbent.gap = 0.0;
  }
  return incumbent;
}

}  // namespace paws
