#include "solver/lp.h"

#include <algorithm>
#include <cmath>

namespace paws {

int LinearProgram::AddVariable(double lower, double upper, double objective,
                               std::string name) {
  CheckOrDie(lower <= upper, "LinearProgram: lower bound exceeds upper");
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(objective);
  is_integer_.push_back(0);
  if (name.empty()) name = "x" + std::to_string(lower_.size() - 1);
  names_.push_back(std::move(name));
  return num_variables() - 1;
}

int LinearProgram::AddBinaryVariable(double objective, std::string name) {
  const int j = AddVariable(0.0, 1.0, objective, std::move(name));
  is_integer_[j] = 1;
  return j;
}

void LinearProgram::AddConstraint(
    const std::vector<std::pair<int, double>>& terms, Relation relation,
    double rhs) {
  // Accumulate duplicate variable terms so downstream solvers see each
  // variable at most once per row.
  std::vector<std::pair<int, double>> merged = terms;
  std::sort(merged.begin(), merged.end());
  std::vector<std::pair<int, double>> out;
  for (const auto& [var, coef] : merged) {
    CheckOrDie(var >= 0 && var < num_variables(),
               "LinearProgram: constraint references unknown variable");
    if (!out.empty() && out.back().first == var) {
      out.back().second += coef;
    } else {
      out.emplace_back(var, coef);
    }
  }
  rows_.push_back(std::move(out));
  relations_.push_back(relation);
  rhs_.push_back(rhs);
}

int LinearProgram::num_integer_variables() const {
  int n = 0;
  for (uint8_t f : is_integer_) n += f;
  return n;
}

void LinearProgram::SetBounds(int j, double lower, double upper) {
  CheckOrDie(j >= 0 && j < num_variables(), "SetBounds: bad variable");
  CheckOrDie(lower <= upper, "SetBounds: crossing bounds");
  lower_[j] = lower;
  upper_[j] = upper;
}

void LinearProgram::SetInteger(int j, bool is_integer) {
  CheckOrDie(j >= 0 && j < num_variables(), "SetInteger: bad variable");
  is_integer_[j] = is_integer ? 1 : 0;
}

double LinearProgram::ObjectiveValue(const std::vector<double>& x) const {
  CheckOrDie(static_cast<int>(x.size()) == num_variables(),
             "ObjectiveValue: size mismatch");
  double v = 0.0;
  for (int j = 0; j < num_variables(); ++j) v += objective_[j] * x[j];
  return v;
}

double LinearProgram::MaxViolation(const std::vector<double>& x) const {
  CheckOrDie(static_cast<int>(x.size()) == num_variables(),
             "MaxViolation: size mismatch");
  double worst = 0.0;
  for (int j = 0; j < num_variables(); ++j) {
    worst = std::max(worst, lower_[j] - x[j]);
    worst = std::max(worst, x[j] - upper_[j]);
  }
  for (int i = 0; i < num_constraints(); ++i) {
    double lhs = 0.0;
    for (const auto& [var, coef] : rows_[i]) lhs += coef * x[var];
    switch (relations_[i]) {
      case Relation::kLessEqual:
        worst = std::max(worst, lhs - rhs_[i]);
        break;
      case Relation::kGreaterEqual:
        worst = std::max(worst, rhs_[i] - lhs);
        break;
      case Relation::kEqual:
        worst = std::max(worst, std::fabs(lhs - rhs_[i]));
        break;
    }
  }
  return worst;
}

}  // namespace paws
