#include "solver/pwl.h"

#include <algorithm>
#include <cmath>

namespace paws {

PiecewiseLinear::PiecewiseLinear(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  CheckOrDie(x_.size() == y_.size(), "PiecewiseLinear: size mismatch");
  CheckOrDie(x_.size() >= 2, "PiecewiseLinear: need at least 2 breakpoints");
  for (size_t i = 1; i < x_.size(); ++i) {
    CheckOrDie(x_[i] > x_[i - 1],
               "PiecewiseLinear: breakpoints must be strictly increasing");
  }
}

PiecewiseLinear PiecewiseLinear::FromFunction(
    const std::function<double(double)>& fn, double lo, double hi,
    int segments) {
  CheckOrDie(segments >= 1, "FromFunction: need >= 1 segment");
  CheckOrDie(hi > lo, "FromFunction: hi must exceed lo");
  std::vector<double> x(segments + 1), y(segments + 1);
  for (int i = 0; i <= segments; ++i) {
    x[i] = lo + (hi - lo) * i / segments;
    y[i] = fn(x[i]);
  }
  return PiecewiseLinear(std::move(x), std::move(y));
}

double PiecewiseLinear::Eval(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const size_t hi = it - x_.begin();
  const size_t lo = hi - 1;
  const double t = (x - x_[lo]) / (x_[hi] - x_[lo]);
  return y_[lo] + t * (y_[hi] - y_[lo]);
}

bool PiecewiseLinear::IsConcave(double tol) const {
  double prev_slope = kLpInfinity;
  for (size_t i = 1; i < x_.size(); ++i) {
    const double slope = (y_[i] - y_[i - 1]) / (x_[i] - x_[i - 1]);
    if (slope > prev_slope + tol) return false;
    prev_slope = slope;
  }
  return true;
}

double PiecewiseLinear::MaxAbsError(const std::function<double(double)>& fn,
                                    int samples) const {
  double worst = 0.0;
  for (int i = 0; i <= samples; ++i) {
    const double x =
        x_front() + (x_back() - x_front()) * i / std::max(1, samples);
    worst = std::max(worst, std::fabs(Eval(x) - fn(x)));
  }
  return worst;
}

std::vector<PiecewiseLinear> PwlFromGrid(const std::vector<double>& x_grid,
                                         const std::vector<double>& y_values,
                                         int num_rows) {
  const size_t m = x_grid.size();
  CheckOrDie(num_rows >= 0 && y_values.size() == num_rows * m,
             "PwlFromGrid: y_values shape mismatch");
  std::vector<PiecewiseLinear> out;
  out.reserve(num_rows);
  for (int v = 0; v < num_rows; ++v) {
    out.emplace_back(
        x_grid, std::vector<double>(y_values.begin() + v * m,
                                    y_values.begin() + (v + 1) * m));
  }
  return out;
}

PwlTermHandle AddPwlObjectiveTerm(LinearProgram* lp, int var_x,
                                  const PiecewiseLinear& f, double weight) {
  CheckOrDie(lp != nullptr, "AddPwlObjectiveTerm: null model");
  const auto& bx = f.breakpoints_x();
  const auto& by = f.breakpoints_y();
  const int num_points = static_cast<int>(bx.size());

  PwlTermHandle handle;
  std::vector<std::pair<int, double>> convexity, link;
  for (int i = 0; i < num_points; ++i) {
    const int lam =
        lp->AddVariable(0.0, 1.0, weight * by[i],
                        "lam_" + lp->name(var_x) + "_" + std::to_string(i));
    handle.lambda_vars.push_back(lam);
    convexity.emplace_back(lam, 1.0);
    link.emplace_back(lam, bx[i]);
  }
  lp->AddConstraint(convexity, Relation::kEqual, 1.0);
  link.emplace_back(var_x, -1.0);
  lp->AddConstraint(link, Relation::kEqual, 0.0);

  // Non-concave terms (or negative weights on concave ones) need explicit
  // SOS2 adjacency; the LP would otherwise cherry-pick the upper envelope.
  const bool relaxation_exact = weight >= 0.0 && f.IsConcave();
  if (!relaxation_exact) {
    std::vector<int> z(num_points - 1);
    std::vector<std::pair<int, double>> pick;
    for (int s = 0; s < num_points - 1; ++s) {
      z[s] = lp->AddBinaryVariable(
          0.0, "seg_" + lp->name(var_x) + "_" + std::to_string(s));
      pick.emplace_back(z[s], 1.0);
    }
    lp->AddConstraint(pick, Relation::kEqual, 1.0);
    for (int i = 0; i < num_points; ++i) {
      std::vector<std::pair<int, double>> adj = {{handle.lambda_vars[i], 1.0}};
      if (i > 0) adj.emplace_back(z[i - 1], -1.0);
      if (i < num_points - 1) adj.emplace_back(z[i], -1.0);
      lp->AddConstraint(adj, Relation::kLessEqual, 0.0);
    }
    handle.segment_vars = std::move(z);
  }
  return handle;
}

}  // namespace paws
