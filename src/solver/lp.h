#ifndef PAWS_SOLVER_LP_H_
#define PAWS_SOLVER_LP_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace paws {

/// Relation of a linear constraint to its right-hand side.
enum class Relation {
  kLessEqual,
  kEqual,
  kGreaterEqual,
};

/// Value treated as +infinity for variable bounds.
inline constexpr double kLpInfinity = 1e30;

/// A linear (or mixed-integer linear) program in model form:
///   maximize  c . x
///   subject to A x (<=, =, >=) b,   l <= x <= u,
/// with an optional integrality flag per variable. Minimization is
/// expressed by negating the objective at the call site (the planner only
/// maximizes). The model is solver-agnostic; SolveLp / SolveMilp consume it.
class LinearProgram {
 public:
  /// Adds a variable and returns its index. `objective` is the
  /// coefficient of the variable in the maximized objective.
  int AddVariable(double lower, double upper, double objective,
                  std::string name = "");

  /// Adds a binary variable (bounds [0,1], integral).
  int AddBinaryVariable(double objective, std::string name = "");

  /// Adds the constraint sum(coef * var) relation rhs. Terms with the same
  /// variable are accumulated.
  void AddConstraint(const std::vector<std::pair<int, double>>& terms,
                     Relation relation, double rhs);

  int num_variables() const { return static_cast<int>(lower_.size()); }
  int num_constraints() const { return static_cast<int>(rhs_.size()); }
  int num_integer_variables() const;

  double lower(int j) const { return lower_[j]; }
  double upper(int j) const { return upper_[j]; }
  double objective(int j) const { return objective_[j]; }
  bool is_integer(int j) const { return is_integer_[j] != 0; }
  const std::string& name(int j) const { return names_[j]; }

  /// Mutators used by branch-and-bound to tighten bounds on a copy.
  void SetBounds(int j, double lower, double upper);
  void SetInteger(int j, bool is_integer);

  const std::vector<std::pair<int, double>>& constraint_terms(int i) const {
    return rows_[i];
  }
  Relation relation(int i) const { return relations_[i]; }
  double rhs(int i) const { return rhs_[i]; }

  /// Objective value of an assignment (no feasibility check).
  double ObjectiveValue(const std::vector<double>& x) const;

  /// Maximum constraint/bound violation of an assignment; 0 means feasible.
  double MaxViolation(const std::vector<double>& x) const;

 private:
  std::vector<double> lower_, upper_, objective_;
  std::vector<uint8_t> is_integer_;
  std::vector<std::string> names_;
  std::vector<std::vector<std::pair<int, double>>> rows_;
  std::vector<Relation> relations_;
  std::vector<double> rhs_;
};

/// Termination state of an LP/MILP solve.
enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  /// MILP only: node or iteration limit hit; `solution` holds the best
  /// incumbent and `gap` bounds its suboptimality.
  kFeasibleLimit,
};

struct LpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;
  /// MILP: |best bound - incumbent| (0 when proven optimal); LP: 0.
  double gap = 0.0;
  /// Statistics.
  long simplex_iterations = 0;
  int nodes_explored = 0;
};

}  // namespace paws

#endif  // PAWS_SOLVER_LP_H_
