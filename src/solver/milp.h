#ifndef PAWS_SOLVER_MILP_H_
#define PAWS_SOLVER_MILP_H_

#include "solver/lp.h"
#include "solver/simplex.h"

namespace paws {

/// Options for the branch-and-bound MILP solver.
struct MilpOptions {
  /// Node budget. When exhausted with an incumbent, the solve returns
  /// kFeasibleLimit and reports the optimality gap.
  int max_nodes = 20000;
  /// Prune nodes whose LP bound improves the incumbent by less than this.
  double absolute_gap_tolerance = 1e-6;
  /// Integrality tolerance: |x - round(x)| below this counts as integral.
  double integrality_tolerance = 1e-6;
  /// Try a round-and-fix heuristic at the root to seed the incumbent.
  bool use_rounding_heuristic = true;
  SimplexOptions simplex;
};

/// Solves a maximization MILP by best-first branch and bound on the
/// variables flagged integral in `lp`, with the dense simplex as the
/// relaxation solver. If `lp` has no integer variables this reduces to a
/// single LP solve.
StatusOr<LpSolution> SolveMilp(const LinearProgram& lp,
                               const MilpOptions& options = {});

}  // namespace paws

#endif  // PAWS_SOLVER_MILP_H_
