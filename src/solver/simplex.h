#ifndef PAWS_SOLVER_SIMPLEX_H_
#define PAWS_SOLVER_SIMPLEX_H_

#include "solver/lp.h"

namespace paws {

/// Options for the LP solver.
struct SimplexOptions {
  /// Hard cap on simplex iterations per phase (0 = automatic, scaled by
  /// problem size). The solver switches from Dantzig to Bland's rule after
  /// sustained degeneracy, so the cap should never bind on sane inputs.
  long max_iterations = 0;
  double feasibility_tolerance = 1e-7;
  double optimality_tolerance = 1e-7;
};

/// Solves the LP relaxation of `lp` (integrality flags ignored) with a
/// dense two-phase primal simplex supporting variable bounds. Returns
/// kOptimal / kInfeasible / kUnbounded; Status errors indicate internal
/// failures (iteration cap) rather than problem status.
StatusOr<LpSolution> SolveLp(const LinearProgram& lp,
                             const SimplexOptions& options = {});

}  // namespace paws

#endif  // PAWS_SOLVER_SIMPLEX_H_
