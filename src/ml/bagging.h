#ifndef PAWS_ML_BAGGING_H_
#define PAWS_ML_BAGGING_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "util/thread_pool.h"

namespace paws {

/// Bagging ensemble configuration.
struct BaggingConfig {
  int num_estimators = 10;
  /// If true, each bootstrap undersamples the majority (negative) class to
  /// match the positive count — the "balanced bagging classifier" the paper
  /// uses for the extreme class imbalance in SWS (imbalanced-learn's
  /// BalancedBaggingClassifier). Positives are sampled with replacement.
  bool balanced = false;
  /// Fraction of rows drawn per bootstrap (ignored when balanced = true).
  double subsample = 1.0;
  /// If true, bootstrap membership counts are recorded so the
  /// infinitesimal-jackknife variance estimate is available.
  bool track_bootstrap_counts = true;
  /// Threads used to fit members. Bootstraps and member RNGs are drawn
  /// serially from the caller's Rng before the parallel region, so the
  /// trained ensemble is bit-identical for every thread count.
  ParallelismConfig parallelism;
};

/// Serializes everything except `parallelism`, which is a property of the
/// serving host, not the model; loaded configs default to auto threading.
void SaveBaggingConfig(const BaggingConfig& config, ArchiveWriter* ar);
StatusOr<BaggingConfig> LoadBaggingConfig(ArchiveReader* ar);

/// Bootstrap-aggregated ensemble around any base classifier. A bagging
/// ensemble of decision trees with per-split feature sampling is equivalent
/// to a random forest (paper Sec. V-C).
///
/// Uncertainty: PredictWithVariance returns the *ensemble spread* — the
/// variance of member predictions (the paper's heuristic confidence metric
/// for bagged trees), or, when members themselves provide variance (GPs),
/// the full mixture variance E[v_i + m_i^2] - m^2.
class BaggingClassifier : public Classifier {
 public:
  BaggingClassifier(std::unique_ptr<Classifier> base, BaggingConfig config)
      : base_(std::move(base)), config_(config) {
    CheckOrDie(base_ != nullptr, "BaggingClassifier requires a base learner");
    CheckOrDie(config_.num_estimators >= 1,
               "BaggingClassifier requires >= 1 estimator");
  }

  Status Fit(const Dataset& data, Rng* rng) override;
  /// Members vote batch-at-a-time: each member's own PredictBatch runs once
  /// over all rows, so per-row virtual dispatch is paid per member, not per
  /// (member, row).
  void PredictBatch(const FeatureMatrixView& x,
                    std::vector<double>* out_probs) const override;
  void PredictBatchWithVariance(const FeatureMatrixView& x,
                                std::vector<Prediction>* out) const override;
  bool ProvidesVariance() const override { return true; }
  std::unique_ptr<Classifier> CloneUntrained() const override;

  /// Serializes the base-learner prototype, every fitted member (both
  /// polymorphically, through the classifier registry) and the bootstrap
  /// counts backing the infinitesimal-jackknife estimate.
  static constexpr uint32_t kArchiveTag = FourCc("BAGG");
  uint32_t ArchiveTag() const override { return kArchiveTag; }
  void Save(ArchiveWriter* ar) const override;
  static StatusOr<std::unique_ptr<Classifier>> Load(ArchiveReader* ar);

  int num_fitted() const { return static_cast<int>(members_.size()); }
  const Classifier& member(int i) const { return *members_[i]; }

  /// Infinitesimal-jackknife variance estimate (Wager, Hastie & Efron 2014):
  /// Var_IJ = sum_i Cov_b(N_{b,i}, t_b)^2, where N_{b,i} is how often
  /// training row i appears in bootstrap b and t_b is member b's prediction.
  /// Requires track_bootstrap_counts; returns FailedPrecondition otherwise.
  StatusOr<double> InfinitesimalJackknifeVariance(
      const std::vector<double>& x) const;

 private:
  std::vector<int> DrawBootstrap(const Dataset& data, Rng* rng) const;

  std::unique_ptr<Classifier> base_;
  BaggingConfig config_;
  std::vector<std::unique_ptr<Classifier>> members_;
  int num_train_rows_ = 0;
  // bootstrap_counts_[b][i] = multiplicity of training row i in bootstrap b.
  std::vector<std::vector<int>> bootstrap_counts_;
};

}  // namespace paws

#endif  // PAWS_ML_BAGGING_H_
