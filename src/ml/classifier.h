#ifndef PAWS_ML_CLASSIFIER_H_
#define PAWS_ML_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/dataset.h"
#include "util/archive.h"
#include "util/feature_matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace paws {

/// A probability with an attached predictive-uncertainty score. For weak
/// learners that do not model uncertainty, variance is 0.
struct Prediction {
  double prob = 0.0;
  double variance = 0.0;
};

namespace internal {

/// Sets a flag for the lifetime of a scope (exception-safe reset) — backs
/// the re-entrancy latch in the pointwise prediction wrappers.
class ScopedFlag {
 public:
  explicit ScopedFlag(bool* flag) : flag_(flag) { *flag_ = true; }
  ~ScopedFlag() { *flag_ = false; }
  ScopedFlag(const ScopedFlag&) = delete;
  ScopedFlag& operator=(const ScopedFlag&) = delete;

 private:
  bool* flag_;
};

}  // namespace internal

/// Abstract binary probabilistic classifier. All PAWS weak learners
/// (decision trees, SVMs, Gaussian processes) and ensembles implement this.
///
/// The interface is batch-first: PredictBatch is the primitive every
/// learner implements, and the pointwise PredictProb / PredictWithVariance
/// calls are one-row wrappers over it. Batch and looped-pointwise outputs
/// are therefore bit-identical by construction, and the serving hot paths
/// (risk maps, effort curves) never pay a virtual call per row.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `data`. Stochastic learners draw from `rng` (never null).
  virtual Status Fit(const Dataset& data, Rng* rng) = 0;

  /// P(y = 1 | x) for every row of `x`, written to `*out_probs` (resized).
  /// Must only be called after a successful Fit.
  virtual void PredictBatch(const FeatureMatrixView& x,
                            std::vector<double>* out_probs) const = 0;

  /// Probability plus predictive-uncertainty score per row. The default
  /// implementation reports zero variance.
  virtual void PredictBatchWithVariance(const FeatureMatrixView& x,
                                        std::vector<Prediction>* out) const {
    std::vector<double> probs;
    PredictBatch(x, &probs);
    out->resize(probs.size());
    for (size_t i = 0; i < probs.size(); ++i) {
      (*out)[i] = Prediction{probs[i], 0.0};
    }
  }

  /// P(y = 1 | x). One-row convenience wrapper over PredictBatch. The
  /// scratch buffer is thread-local so pointwise sweeps don't allocate per
  /// call; batch implementations must not call back into the same wrapper
  /// (a custom PredictBatch looping PredictProb per row would overwrite
  /// the buffer its own caller is reading) — enforced by the guard.
  double PredictProb(const std::vector<double>& x) const {
    static thread_local std::vector<double> probs;
    static thread_local bool entered = false;
    CheckOrDie(!entered,
               "Classifier::PredictProb re-entered from a PredictBatch "
               "implementation; batch impls must not call the one-row "
               "wrappers");
    const internal::ScopedFlag guard(&entered);
    PredictBatch(FeatureMatrixView::OfRow(x), &probs);
    return probs[0];
  }

  /// One-row convenience wrapper over PredictBatchWithVariance; same
  /// thread-local scratch contract as PredictProb.
  Prediction PredictWithVariance(const std::vector<double>& x) const {
    static thread_local std::vector<Prediction> preds;
    static thread_local bool entered = false;
    CheckOrDie(!entered,
               "Classifier::PredictWithVariance re-entered from a "
               "PredictBatchWithVariance implementation; batch impls must "
               "not call the one-row wrappers");
    const internal::ScopedFlag guard(&entered);
    PredictBatchWithVariance(FeatureMatrixView::OfRow(x), &preds);
    return preds[0];
  }

  /// True if PredictBatchWithVariance returns a model-intrinsic uncertainty
  /// (Gaussian processes) rather than the zero default.
  virtual bool ProvidesVariance() const { return false; }

  /// A fresh, untrained copy configured identically (for ensembles).
  virtual std::unique_ptr<Classifier> CloneUntrained() const = 0;

  /// Fourcc type tag identifying this learner in archives; the key into
  /// the loader registry behind LoadClassifier.
  virtual uint32_t ArchiveTag() const = 0;

  /// Serializes config + fitted state (body only — SaveClassifier frames
  /// it with the type tag). Untrained models serialize their config, so a
  /// loaded ensemble prototype still supports CloneUntrained.
  virtual void Save(ArchiveWriter* ar) const = 0;
};

/// Writes `model` as a self-describing section: tag + Save body. The
/// polymorphic counterpart of LoadClassifier.
void SaveClassifier(const Classifier& model, ArchiveWriter* ar);

/// Loads whichever classifier type the archive holds next, dispatching on
/// the section tag through the loader registry. Unknown tags and malformed
/// bodies fail with InvalidArgument.
StatusOr<std::unique_ptr<Classifier>> LoadClassifier(ArchiveReader* ar);

/// Loader signature: parse a Save() body (the section is already entered)
/// and return the reconstructed model.
using ClassifierLoader = StatusOr<std::unique_ptr<Classifier>> (*)(
    ArchiveReader* ar);

/// Registers a loader for `tag`. The four built-in learners are registered
/// automatically; call this to make custom Classifier subclasses loadable
/// through LoadClassifier. Re-registering a tag replaces the loader.
void RegisterClassifierLoader(uint32_t tag, ClassifierLoader loader);

/// Convenience: scores every row of `data` in one batch.
std::vector<double> PredictAll(const Classifier& model, const Dataset& data);

}  // namespace paws

#endif  // PAWS_ML_CLASSIFIER_H_
