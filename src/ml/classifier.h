#ifndef PAWS_ML_CLASSIFIER_H_
#define PAWS_ML_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace paws {

/// A probability with an attached predictive-uncertainty score. For weak
/// learners that do not model uncertainty, variance is 0.
struct Prediction {
  double prob = 0.0;
  double variance = 0.0;
};

/// Abstract binary probabilistic classifier. All PAWS weak learners
/// (decision trees, SVMs, Gaussian processes) and ensembles implement this.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `data`. Stochastic learners draw from `rng` (never null).
  virtual Status Fit(const Dataset& data, Rng* rng) = 0;

  /// P(y = 1 | x). Must only be called after a successful Fit.
  virtual double PredictProb(const std::vector<double>& x) const = 0;

  /// Probability plus a predictive-uncertainty score. The default
  /// implementation reports zero variance.
  virtual Prediction PredictWithVariance(const std::vector<double>& x) const {
    return Prediction{PredictProb(x), 0.0};
  }

  /// True if PredictWithVariance returns a model-intrinsic uncertainty
  /// (Gaussian processes) rather than the zero default.
  virtual bool ProvidesVariance() const { return false; }

  /// A fresh, untrained copy configured identically (for ensembles).
  virtual std::unique_ptr<Classifier> CloneUntrained() const = 0;
};

/// Convenience: scores every row of `data` with PredictProb.
std::vector<double> PredictAll(const Classifier& model, const Dataset& data);

}  // namespace paws

#endif  // PAWS_ML_CLASSIFIER_H_
