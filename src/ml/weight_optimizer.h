#ifndef PAWS_ML_WEIGHT_OPTIMIZER_H_
#define PAWS_ML_WEIGHT_OPTIMIZER_H_

#include <vector>

#include "util/status.h"

namespace paws {

/// Input to the ensemble-weight optimization: per-classifier validation
/// predictions with a qualification mask. Row r of `probs` holds the
/// predictions of all I classifiers on validation point r; `qualified[r][i]`
/// says whether classifier i may vote on point r (in iWare-E, classifier
/// C_{theta_i} is qualified when theta_i <= the point's patrol effort).
/// Each row must have at least one qualified classifier.
struct WeightOptimizationProblem {
  std::vector<std::vector<double>> probs;     // n x I
  std::vector<std::vector<uint8_t>> qualified;  // n x I
  std::vector<int> labels;                    // n
};

struct WeightOptimizerConfig {
  int iterations = 300;
  double learning_rate = 0.5;
  double prob_clip = 1e-6;
};

/// Finds simplex weights w (w_i >= 0, sum = 1) minimizing the log loss of
/// the qualified weighted mixture
///   p_r = sum_i q_{ri} w_i probs_{ri} / sum_i q_{ri} w_i
/// via exponentiated-gradient descent — the paper's "systematic way to
/// compute optimal classifier weights" (Sec. IV enhancement 1). Returns the
/// optimized weights.
StatusOr<std::vector<double>> OptimizeEnsembleWeights(
    const WeightOptimizationProblem& problem,
    const WeightOptimizerConfig& config = {});

/// Log loss of the qualified mixture under the given weights (the objective
/// OptimizeEnsembleWeights minimizes); exposed for tests and ablations.
StatusOr<double> MixtureLogLoss(const WeightOptimizationProblem& problem,
                                const std::vector<double>& weights,
                                double prob_clip = 1e-6);

}  // namespace paws

#endif  // PAWS_ML_WEIGHT_OPTIMIZER_H_
