#include "ml/kernel.h"

#include <cmath>

#include "util/status.h"

namespace paws {

double RbfKernel::operator()(const std::vector<double>& a,
                             const std::vector<double>& b) const {
  CheckOrDie(a.size() == b.size(), "RbfKernel: dimension mismatch");
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return signal_variance *
         std::exp(-sq / (2.0 * length_scale * length_scale));
}

Matrix RbfKernel::GramMatrix(const std::vector<std::vector<double>>& x,
                             double jitter) const {
  const int n = static_cast<int>(x.size());
  Matrix k(n, n);
  for (int i = 0; i < n; ++i) {
    k(i, i) = signal_variance + jitter;
    for (int j = i + 1; j < n; ++j) {
      const double v = (*this)(x[i], x[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

std::vector<double> RbfKernel::CrossVector(
    const std::vector<std::vector<double>>& x_train,
    const std::vector<double>& x_star) const {
  std::vector<double> out(x_train.size());
  for (size_t i = 0; i < x_train.size(); ++i) {
    out[i] = (*this)(x_train[i], x_star);
  }
  return out;
}

}  // namespace paws
