#include "ml/kernel.h"

#include <cmath>

#include "util/status.h"

namespace paws {

double RbfKernel::operator()(const std::vector<double>& a,
                             const std::vector<double>& b) const {
  CheckOrDie(a.size() == b.size(), "RbfKernel: dimension mismatch");
  return Eval(a.data(), b.data(), static_cast<int>(a.size()));
}

double RbfKernel::Eval(const double* a, const double* b, int k) const {
  double sq = 0.0;
  for (int i = 0; i < k; ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return signal_variance *
         std::exp(-sq / (2.0 * length_scale * length_scale));
}

Matrix RbfKernel::GramMatrix(const std::vector<std::vector<double>>& x,
                             double jitter) const {
  const int n = static_cast<int>(x.size());
  Matrix k(n, n);
  for (int i = 0; i < n; ++i) {
    k(i, i) = signal_variance + jitter;
    for (int j = i + 1; j < n; ++j) {
      const double v = (*this)(x[i], x[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

}  // namespace paws
