#ifndef PAWS_ML_COMPILED_GP_H_
#define PAWS_ML_COMPILED_GP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/compiled_backend.h"

namespace paws {

namespace internal {
struct GpLaneOps;
}  // namespace internal

/// Kernel-block ScoringBackend for an iWare-E ensemble whose weak learners
/// are all baggings of Gaussian-process classifiers (GPB — the paper's
/// uncertainty-bearing configuration). Every member GP's posterior cache is
/// flattened into contiguous pools at selection time — inducing inputs as
/// one row-major block, likelihood gradients, W^1/2, the Cholesky factor of
/// B, standardizer moments — and a batch is served as one fused sweep per
/// member: standardize the block's rows once, evaluate the cross-covariance
/// kernel block column-vectorized, then run the latent-mean GEMV and the
/// multi-RHS forward substitution over the whole block. No virtual dispatch
/// per member, no per-call work-buffer allocation (thread-local scratch),
/// and the reference path's kChunk=64 re-streaming of the Cholesky factor
/// drops to once per 256-row block.
///
/// Bit-exactness contract: per column the arithmetic replays
/// GaussianProcessClassifier::PredictBatchWithVariance term for term — the
/// standardize divide, the feature-order squared-distance reduction and the
/// exact `signal_variance * exp(-sq / (2 l^2))` kernel expression, the
/// i-ascending latent-mean accumulation, the scalar-order forward
/// substitution, the variance clamp and the MacKay sigmoid — and bagging
/// members accumulate `prob` / `variance + prob^2` in member order, exactly
/// BaggingClassifier::PredictBatchWithVariance. Vectorization happens only
/// ACROSS columns (independent lanes), never within a column's reduction,
/// so compiled-GP serving is bit-identical to the reference path including
/// the variance channel. The lane width is runtime-dispatched like the
/// forest walkers — Compile() resolves an internal::GpLaneOps table from
/// the active SIMD tier (CPUID-detected, clamped by PAWS_FORCE_BACKEND) —
/// but because every lane op is element-independent and FMA-free, every
/// tier produces the same bits; the backend keeps the single name
/// "compiled-gp" across tiers. The mixing harness is shared with the other
/// compiled backends (internal::CompiledBackendBase).
class CompiledGpEnsemble
    : public internal::CompiledBackendBase<CompiledGpEnsemble> {
 public:
  /// Flattens `learners` (parallel to ascending `thresholds` and mixing
  /// `weights`). Returns nullptr — caller tries the next backend — unless
  /// every learner is a fitted BaggingClassifier whose members are all
  /// fitted GaussianProcessClassifiers of one shared feature width and the
  /// thresholds are strictly increasing (the prefix-scan precondition).
  static std::unique_ptr<CompiledGpEnsemble> Compile(
      const std::vector<std::unique_ptr<Classifier>>& learners,
      const std::vector<double>& thresholds,
      const std::vector<double>& weights);

  const char* name() const override { return "compiled-gp"; }

  /// Total flattened member count across all learners.
  int num_members() const { return static_cast<int>(members_.size()); }

  /// Largest inducing-point count over all members (scratch sizing).
  int max_inducing_points() const { return max_inducing_; }

 private:
  friend class internal::CompiledBackendBase<CompiledGpEnsemble>;

  CompiledGpEnsemble() = default;

  /// Scores one learner over the `count` rows selected by `idx` (see
  /// CompiledBackendBase for the exact contract): per selected row, the
  /// member-order sum of MacKay-averaged probabilities and
  /// `variance + prob^2` in `sum`/`sum2` (GP members carry intrinsic
  /// variance), then the bagging mean and clamped ensemble-spread variance
  /// in `mean`/`variance`.
  void ScoreLearner(int learner, const double* rows, int stride,
                    const int* idx, int count, double* sum, double* sum2,
                    double* mean, double* variance) const;

  /// GaussianProcessClassifier::PredictBatchWithVariance requires the
  /// exact trained width, so the compiled path does too.
  void CheckRowWidth(int cols) const {
    CheckOrDie(cols == num_features_,
               "CompiledGpEnsemble: feature row width mismatch");
  }

  /// One member GP's flattened posterior cache: sizes, the effective
  /// kernel, and offsets into the shared pools below.
  struct Member {
    int32_t n = 0;                  // inducing points
    double length_scale = 1.0;      // effective kernel
    double signal_variance = 1.0;   // also the prior latent variance
    size_t x_offset = 0;            // inducing rows, n * k doubles
    size_t vec_offset = 0;          // grad_log_lik then sqrt_w, n each
    size_t chol_offset = 0;         // L of B, n * n row-major
    size_t std_offset = 0;          // standardizer mean then stddev, k each
  };

  std::vector<Member> members_;
  // Members of learner i: [learner_member_begin_[i],
  // learner_member_begin_[i + 1]).
  std::vector<int32_t> learner_member_begin_;  // size num_learners + 1
  std::vector<double> x_pool_;     // inducing inputs, row-major per member
  std::vector<double> vec_pool_;   // grad_log_lik / sqrt_w runs
  std::vector<double> chol_pool_;  // Cholesky factors, row-major per member
  std::vector<double> std_pool_;   // standardizer mean / stddev runs
  int max_inducing_ = 0;
  // Tier-dispatched lane primitives, resolved once at Compile() from the
  // active SIMD tier (points at a static table; never null, never owned).
  const internal::GpLaneOps* lanes_ = nullptr;
};

}  // namespace paws

#endif  // PAWS_ML_COMPILED_GP_H_
