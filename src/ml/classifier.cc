#include "ml/classifier.h"

#include <map>

#include "ml/bagging.h"
#include "ml/decision_tree.h"
#include "ml/gaussian_process.h"
#include "ml/linear_svm.h"

namespace paws {

namespace {

std::map<uint32_t, ClassifierLoader>& LoaderRegistry() {
  // The built-ins are registered eagerly so the registry never depends on
  // static-initialization order or linker section pruning.
  static std::map<uint32_t, ClassifierLoader>* registry = [] {
    auto* m = new std::map<uint32_t, ClassifierLoader>();
    (*m)[DecisionTree::kArchiveTag] = &DecisionTree::Load;
    (*m)[LinearSvm::kArchiveTag] = &LinearSvm::Load;
    (*m)[GaussianProcessClassifier::kArchiveTag] =
        &GaussianProcessClassifier::Load;
    (*m)[BaggingClassifier::kArchiveTag] = &BaggingClassifier::Load;
    return m;
  }();
  return *registry;
}

}  // namespace

void RegisterClassifierLoader(uint32_t tag, ClassifierLoader loader) {
  CheckOrDie(loader != nullptr, "RegisterClassifierLoader: null loader");
  LoaderRegistry()[tag] = loader;
}

void SaveClassifier(const Classifier& model, ArchiveWriter* ar) {
  ar->BeginSection(model.ArchiveTag());
  model.Save(ar);
  ar->EndSection();
}

StatusOr<std::unique_ptr<Classifier>> LoadClassifier(ArchiveReader* ar) {
  uint32_t tag = 0;
  PAWS_RETURN_IF_ERROR(ar->EnterAnySection(&tag));
  const auto& registry = LoaderRegistry();
  const auto it = registry.find(tag);
  if (it == registry.end()) {
    return Status::InvalidArgument("LoadClassifier: unknown classifier tag '" +
                                   FourCcName(tag) + "'");
  }
  auto loaded = it->second(ar);
  if (!loaded.ok()) return loaded.status();
  PAWS_RETURN_IF_ERROR(ar->LeaveSection());
  return std::move(loaded).value();
}

}  // namespace paws
