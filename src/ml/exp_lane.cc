#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // dladdr
#endif
#include "ml/exp_lane.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

// The replay is glibc-shaped x86 code through and through: it needs the
// AVX-512 gathers for the 2^(k/128) table and dladdr to find the libm
// image that holds it. Everything else falls back to the scalar tail.
#if defined(__x86_64__) && defined(__linux__) && \
    (defined(__GNUC__) || defined(__clang__))
#define PAWS_EXP_LANE_X86 1
#include <dlfcn.h>
#include <immintrin.h>

#include <cstdio>
#endif

namespace paws {
namespace internal {

#if defined(PAWS_EXP_LANE_X86)

namespace {

// glibc's FMA exp constant block, in the exact layout the multiarch
// build anchors its loads on (verified by disassembly): the polynomial
// header is 8 contiguous doubles, the 2^(i/128) table follows at +0x70
// interleaved as {tail_bits, scale_bits} pairs.
struct ExpReplayData {
  double invln2n;
  double negln2hin;
  double negln2lon;
  double c2, c3, c4, c5;
  double shift;
  alignas(64) uint64_t tab[256];
};
constexpr size_t kTabFileOffset = 0x70;
// Signature: invln2N = 128/ln2 (unique in libm) with Shift = 0x1.8p52 at
// the header's last slot — distinguishes this layout from the generic
// __exp_data, whose second field is the shift.
constexpr uint64_t kInvLn2NBits = 0x40671547652B82FEull;
constexpr uint64_t kShiftBits = 0x4338000000000000ull;

ExpReplayData g_exp_data;

bool LoadExpReplayData(ExpReplayData* out) {
  void* sym = dlsym(RTLD_DEFAULT, "exp");
  Dl_info info;
  if (sym == nullptr || dladdr(sym, &info) == 0 || info.dli_fname == nullptr) {
    return false;
  }
  std::FILE* f = std::fopen(info.dli_fname, "rb");
  if (f == nullptr) return false;
  std::vector<unsigned char> image;
  unsigned char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    image.insert(image.end(), buf, buf + got);
  }
  std::fclose(f);
  const size_t need = kTabFileOffset + sizeof(g_exp_data.tab);
  if (image.size() < need) return false;
  unsigned char sig[8], shift_sig[8];
  std::memcpy(sig, &kInvLn2NBits, 8);
  std::memcpy(shift_sig, &kShiftBits, 8);
  for (size_t i = 0; i + need <= image.size(); ++i) {
    if (std::memcmp(image.data() + i, sig, 8) != 0) continue;
    if (std::memcmp(image.data() + i + 0x38, shift_sig, 8) != 0) continue;
    std::memcpy(&out->invln2n, image.data() + i, 8 * sizeof(double));
    std::memcpy(out->tab, image.data() + i + kTabFileOffset,
                sizeof(out->tab));
    return true;
  }
  return false;
}

// The scalar loop the replay must match bit-for-bit — kept noinline so the
// verification baseline is compiled for the baseline ISA, exactly like
// kernel_block.cc's scalar tail.
__attribute__((noinline)) void KernelTailRef(double sv, double denom,
                                             double* w, int n, int m) {
  const size_t total = static_cast<size_t>(n) * m;
  for (size_t j = 0; j < total; ++j) w[j] = sv * std::exp(-w[j] / denom);
}

__attribute__((target("avx512f"))) void KernelTailAvx512Exp(double sv,
                                                            double denom,
                                                            double* w, int n,
                                                            int m) {
  const ExpReplayData& d = g_exp_data;
  const __m512d vsv = _mm512_set1_pd(sv);
  const __m512d vden = _mm512_set1_pd(denom);
  const __m512d vsign = _mm512_set1_pd(-0.0);
  const __m512d vinv = _mm512_set1_pd(d.invln2n);
  const __m512d vshift = _mm512_set1_pd(d.shift);
  const __m512d vhi = _mm512_set1_pd(d.negln2hin);
  const __m512d vlo = _mm512_set1_pd(d.negln2lon);
  const __m512d vc2 = _mm512_set1_pd(d.c2);
  const __m512d vc3 = _mm512_set1_pd(d.c3);
  const __m512d vc4 = _mm512_set1_pd(d.c4);
  const __m512d vc5 = _mm512_set1_pd(d.c5);
  const size_t total = static_cast<size_t>(n) * m;
  for (size_t j0 = 0; j0 < total; j0 += 8) {
    const int rem = total - j0 < 8 ? static_cast<int>(total - j0) : 8;
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    const __m512d wv = _mm512_maskz_loadu_pd(mask, w + j0);
    // x = -w / denom: the sign flip is exact (integer xor — the pd xor
    // needs AVX-512DQ), the divide rounds once — the scalar expression's
    // ops in the scalar expression's order.
    const __m512d neg = _mm512_castsi512_pd(_mm512_xor_epi64(
        _mm512_castpd_si512(wv), _mm512_castpd_si512(vsign)));
    const __m512d x = _mm512_div_pd(neg, vden);
    // libm's fast-path gate: biased exponent of |x| in [969, 1031], i.e.
    // 2^-54 <= |x| < 512. The unsigned-wrap compare routes 0, tiny,
    // huge, inf and NaN lanes to the scalar patch-up below, where libm
    // itself handles them.
    const __m512i ebits = _mm512_and_epi64(
        _mm512_srli_epi64(_mm512_castpd_si512(x), 52),
        _mm512_set1_epi64(0x7ff));
    __mmask8 fast = _mm512_cmple_epu64_mask(
        _mm512_sub_epi64(ebits, _mm512_set1_epi64(969)),
        _mm512_set1_epi64(62));
    fast &= mask;
    if (fast) {
      // exp(x) = 2^(k/128) * exp(r). Every fma/mul/add below mirrors one
      // instruction of the compiled libm fast path, so each lane rounds
      // exactly as the scalar call chain does.
      __m512d kd = _mm512_fmadd_pd(x, vinv, vshift);
      const __m512i ki = _mm512_castpd_si512(kd);
      kd = _mm512_sub_pd(kd, vshift);
      const __m512d r =
          _mm512_fmadd_pd(kd, vlo, _mm512_fmadd_pd(kd, vhi, x));
      const __m512i idx = _mm512_slli_epi64(
          _mm512_and_epi64(ki, _mm512_set1_epi64(127)), 1);
      const __m512d tail = _mm512_mask_i64gather_pd(
          _mm512_setzero_pd(), fast, idx, d.tab, 8);
      __m512i sbits = _mm512_mask_i64gather_epi64(
          _mm512_setzero_si512(), fast,
          _mm512_or_epi64(idx, _mm512_set1_epi64(1)), d.tab, 8);
      sbits = _mm512_add_epi64(sbits, _mm512_slli_epi64(ki, 45));
      const __m512d scale = _mm512_castsi512_pd(sbits);
      const __m512d p1 = _mm512_fmadd_pd(r, vc3, vc2);
      const __m512d p2 = _mm512_fmadd_pd(r, vc5, vc4);
      const __m512d r2 = _mm512_mul_pd(r, r);
      const __m512d s2 = _mm512_fmadd_pd(r2, p1, _mm512_add_pd(tail, r));
      const __m512d tmp =
          _mm512_fmadd_pd(_mm512_mul_pd(r2, r2), p2, s2);
      const __m512d e = _mm512_fmadd_pd(scale, tmp, scale);
      _mm512_mask_storeu_pd(w + j0, fast, _mm512_mul_pd(vsv, e));
    }
    unsigned slow = mask & static_cast<unsigned>(~fast);
    while (slow) {
      const int l = __builtin_ctz(slow);
      slow &= slow - 1;
      w[j0 + l] = sv * std::exp(-w[j0 + l] / denom);
    }
  }
}

// Prove the replay before trusting it: run the vector tail and the scalar
// reference over a probe sweep and require bitwise equality. The sweep
// covers every biased exponent through and past the fast-path gate with
// random and extremal mantissas, points adjacent to the k*ln2/128 rounding
// boundaries (where the shift-trick round-to-int is most delicate), both
// signs, and the special values the gate must punt on.
bool VerifyExpReplay() {
  std::vector<double> probes;
  probes.reserve(1 << 17);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state;
  };
  for (int e = 958; e <= 1042; ++e) {
    for (int i = 0; i < 48; ++i) {
      uint64_t mant = next() & 0xfffffffffffffull;
      if (i == 0) mant = 0;
      if (i == 1) mant = 0xfffffffffffffull;
      const uint64_t bits = (static_cast<uint64_t>(e) << 52) | mant;
      double v;
      std::memcpy(&v, &bits, 8);
      probes.push_back(v);
      probes.push_back(-v);
    }
  }
  const double step = 0.693147180559945309417 / 128.0;
  for (int k = 1; k < 65000; k += 11) {
    const double b = k * step;
    probes.push_back(b);
    probes.push_back(std::nextafter(b, 0.0));
    probes.push_back(std::nextafter(b, 1e9));
  }
  const double inf = std::numeric_limits<double>::infinity();
  for (double v : {0.0, -0.0, 0x1p-54, -0x1p-54, 5e-324, 1e-300, 511.999,
                   512.0, 708.0, 710.0, 1e308, inf, -inf,
                   std::numeric_limits<double>::quiet_NaN()}) {
    probes.push_back(v);
  }
  // Odd row/column splits so the mask tails run, and denom/sv values that
  // exercise the leading divide and trailing multiply.
  const struct {
    double sv, denom;
  } cfgs[] = {{1.0, 1.0}, {1.7, 2.0 * 0.7 * 0.7}, {0.25, 98.0}};
  const int count = static_cast<int>(probes.size());
  std::vector<double> a(probes.size()), b(probes.size());
  for (const auto& cfg : cfgs) {
    for (int m : {count, 7}) {
      const int n = count / m;
      std::memcpy(a.data(), probes.data(), 8 * probes.size());
      std::memcpy(b.data(), probes.data(), 8 * probes.size());
      KernelTailRef(cfg.sv, cfg.denom, a.data(), n, m);
      KernelTailAvx512Exp(cfg.sv, cfg.denom, b.data(), n, m);
      if (std::memcmp(a.data(), b.data(),
                      8 * static_cast<size_t>(n) * m) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

KernelTailFn GetVectorKernelTail(SimdTier tier) {
  if (tier != SimdTier::kAvx512 || DetectSimdTier() != SimdTier::kAvx512) {
    // The AVX2 tier keeps the scalar tail: the replay needs FMA and the
    // 64-bit gathers, and on AVX2-only hosts libm picks the same FMA
    // variant only sometimes — not worth a second verified schedule.
    return nullptr;
  }
  static const KernelTailFn resolved = []() -> KernelTailFn {
    if (!LoadExpReplayData(&g_exp_data)) return nullptr;
    if (!VerifyExpReplay()) return nullptr;
    return &KernelTailAvx512Exp;
  }();
  return resolved;
}

#else  // !PAWS_EXP_LANE_X86

KernelTailFn GetVectorKernelTail(SimdTier) { return nullptr; }

#endif

}  // namespace internal
}  // namespace paws
