#include "ml/compiled_forest.h"

#include <algorithm>

#include "ml/bagging.h"

namespace paws {

namespace {

// Row-block sizes for the blocked traversal: a block's feature rows stay
// resident while every tree sweeps over it, and one tree's nodes stay hot
// across the whole block. Matches the reference path's parallel grains so
// thread-count sweeps compare like with like.
constexpr int kRowBlock = 256;
constexpr int kCurveRowBlock = 256;
static_assert(kCurveRowBlock <= kRowBlock, "scratch is sized by kRowBlock");

// Fixed-size per-chunk scratch: ParallelFor chunks are capped at kRowBlock
// rows, so every per-row intermediate lives on the worker's stack and the
// serving paths allocate nothing per call beyond their output buffers.
struct ChunkScratch {
  int idx[kRowBlock];
  int q[kRowBlock];
  double sum[kRowBlock];
  double sum2[kRowBlock];
  double lmean[kRowBlock];
  double lvar[kRowBlock];
  double wsum[kRowBlock];
  double mean[kRowBlock];
  double second[kRowBlock];
};

// One traversal step for one interleaved lane: cursor `c`, feature row
// `p`. Tree walking is a dependent-load chain (node -> child ->
// grandchild), so a single row is latency-bound; stepping four lanes with
// independent scalar cursors keeps four chains in flight per tree (named
// scalars, not a lane array — the array form spills to the stack and
// serializes the chains). A cursor parked on a leaf stays put (the
// `feature >= 0` select), and the right-child predicate `!(x <= value)`
// routes NaN features exactly as the reference DecisionTree::PredictRow
// ternary does.
#define PAWS_FOREST_STEP(c, p)                                              \
  {                                                                         \
    const CompiledForest::Node node = nodes[c];                             \
    const int next =                                                        \
        node.left +                                                         \
        static_cast<int>(                                                   \
            !((p)[node.feature >= 0 ? node.feature : 0] <= node.value));    \
    live |= static_cast<int>(node.feature >= 0);                            \
    (c) = node.feature >= 0 ? next : (c);                                   \
  }

// Runs `fn(lo, cn)` over [0, n) in chunks of at most `block` rows. The
// parallel grain is `block`, but a serial ParallelFor hands the whole
// range to one call, so the body re-blocks itself — every chunk reaching
// `fn` fits the fixed ChunkScratch capacity.
template <typename Fn>
void ForEachBlock(const ParallelismConfig& parallelism, int n, int block,
                  const Fn& fn) {
  ParallelFor(parallelism, 0, n, block,
              [&](std::int64_t lo64, std::int64_t hi64) {
                for (std::int64_t b = lo64; b < hi64; b += block) {
                  fn(static_cast<int>(b),
                     static_cast<int>(
                         std::min<std::int64_t>(block, hi64 - b)));
                }
              });
}

}  // namespace

bool CompiledForest::FlattenTree(
    const std::vector<DecisionTree::Node>& nodes) {
  // Breadth-first renumbering: children are allocated adjacently in queue
  // order, so each level of the tree occupies one contiguous span — the
  // span the level-synchronous interleaved traversal hits.
  struct Item {
    int src;
    int32_t dst;
    int depth;
  };
  tree_root_.push_back(static_cast<int32_t>(nodes_.size()));
  tree_depth_.push_back(0);
  nodes_.emplace_back();
  std::vector<Item> queue{{0, tree_root_.back(), 0}};
  for (size_t head = 0; head < queue.size(); ++head) {
    const Item item = queue[head];
    if (item.src < 0 || item.src >= static_cast<int>(nodes.size()) ||
        queue.size() > nodes.size()) {
      return false;  // malformed tree: caller abandons compilation
    }
    const DecisionTree::Node& node = nodes[item.src];
    if (node.left < 0) {
      nodes_[item.dst] = Node{-1, 0, node.prob};
      tree_depth_.back() = std::max(tree_depth_.back(), item.depth);
      continue;
    }
    if (node.feature < 0) return false;
    const int32_t kids = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_.emplace_back();
    nodes_[item.dst] = Node{node.feature, kids, node.threshold};
    num_features_ = std::max(num_features_, node.feature + 1);
    queue.push_back({node.left, kids, item.depth + 1});
    queue.push_back({node.right, kids + 1, item.depth + 1});
  }
  return true;
}

std::unique_ptr<CompiledForest> CompiledForest::Compile(
    const std::vector<std::unique_ptr<Classifier>>& learners,
    const std::vector<double>& thresholds,
    const std::vector<double>& weights) {
  if (learners.empty() || learners.size() != thresholds.size() ||
      learners.size() != weights.size()) {
    return nullptr;
  }
  // The prefix-scan mixing assumes the qualified set at any effort is a
  // prefix of the learner list, i.e. ascending thresholds.
  for (size_t i = 1; i < thresholds.size(); ++i) {
    if (!(thresholds[i] > thresholds[i - 1])) return nullptr;
  }
  std::unique_ptr<CompiledForest> forest(new CompiledForest());
  forest->thresholds_ = thresholds;
  forest->weights_ = weights;
  forest->learner_tree_begin_.push_back(0);
  for (const auto& learner : learners) {
    const auto* bag = dynamic_cast<const BaggingClassifier*>(learner.get());
    if (bag == nullptr || bag->num_fitted() == 0) return nullptr;
    for (int b = 0; b < bag->num_fitted(); ++b) {
      const auto* tree = dynamic_cast<const DecisionTree*>(&bag->member(b));
      if (tree == nullptr || tree->NodeCount() == 0) return nullptr;
      if (!forest->FlattenTree(tree->nodes())) return nullptr;
    }
    forest->learner_members_.push_back(bag->num_fitted());
    forest->learner_tree_begin_.push_back(
        static_cast<int32_t>(forest->tree_root_.size()));
  }
  return forest;
}

int CompiledForest::NumQualified(double effort) const {
  // thresholds_ is ascending, so the qualified set is the prefix below the
  // first threshold exceeding `effort`.
  return static_cast<int>(std::upper_bound(thresholds_.begin(),
                                           thresholds_.end(), effort) -
                          thresholds_.begin());
}

namespace {

// Walks one flattened tree over the selected rows, accumulating each leaf
// value and its square into sum/sum2. The first tree of a learner assigns
// instead (kAssign), so callers never pre-zero the accumulators. Starting
// the sums at the first member's value instead of 0.0 is bit-identical:
// 0.0 + v == v for every leaf probability (v >= 0).
template <bool kAssign>
void WalkTree(const CompiledForest::Node* nodes, int root, int depth,
              const double* rows, int stride, const int* idx, int count,
              double* sum, double* sum2) {
  int i = 0;
  // Interleaved traversal, four lanes per group: every cursor advances one
  // level per iteration, for at most `depth` iterations.
  for (; i + 4 <= count; i += 4) {
    const double* p0 = rows + static_cast<size_t>(idx[i]) * stride;
    const double* p1 = rows + static_cast<size_t>(idx[i + 1]) * stride;
    const double* p2 = rows + static_cast<size_t>(idx[i + 2]) * stride;
    const double* p3 = rows + static_cast<size_t>(idx[i + 3]) * stride;
    int c0 = root, c1 = root, c2 = root, c3 = root;
    for (int d = 0; d < depth; ++d) {
      int live = 0;
      PAWS_FOREST_STEP(c0, p0)
      PAWS_FOREST_STEP(c1, p1)
      PAWS_FOREST_STEP(c2, p2)
      PAWS_FOREST_STEP(c3, p3)
      // Every cursor parked on a leaf: done early — imbalanced trees put
      // most rows well short of the max depth.
      if (!live) break;
    }
    const double v0 = nodes[c0].value;
    const double v1 = nodes[c1].value;
    const double v2 = nodes[c2].value;
    const double v3 = nodes[c3].value;
    if (kAssign) {
      sum[i] = v0;
      sum2[i] = v0 * v0;
      sum[i + 1] = v1;
      sum2[i + 1] = v1 * v1;
      sum[i + 2] = v2;
      sum2[i + 2] = v2 * v2;
      sum[i + 3] = v3;
      sum2[i + 3] = v3 * v3;
    } else {
      sum[i] += v0;
      sum2[i] += v0 * v0;
      sum[i + 1] += v1;
      sum2[i + 1] += v1 * v1;
      sum[i + 2] += v2;
      sum2[i + 2] += v2 * v2;
      sum[i + 3] += v3;
      sum2[i + 3] += v3 * v3;
    }
  }
  for (; i < count; ++i) {  // remainder rows: plain serial walk
    const double* row = rows + static_cast<size_t>(idx[i]) * stride;
    int c = root;
    for (int f = nodes[c].feature; f >= 0; f = nodes[c].feature) {
      c = nodes[c].left + static_cast<int>(!(row[f] <= nodes[c].value));
    }
    const double p = nodes[c].value;
    if (kAssign) {
      sum[i] = p;
      sum2[i] = p * p;
    } else {
      sum[i] += p;
      sum2[i] += p * p;
    }
  }
}

}  // namespace

void CompiledForest::ScoreLearner(int learner, const double* rows, int stride,
                                  const int* idx, int count, double* sum,
                                  double* sum2, double* mean,
                                  double* variance) const {
  const Node* nodes = nodes_.data();
  const int tree_begin = learner_tree_begin_[learner];
  const int tree_end = learner_tree_begin_[learner + 1];
  for (int t = tree_begin; t < tree_end; ++t) {
    if (t == tree_begin) {
      WalkTree<true>(nodes, tree_root_[t], tree_depth_[t], rows, stride, idx,
                     count, sum, sum2);
    } else {
      WalkTree<false>(nodes, tree_root_[t], tree_depth_[t], rows, stride, idx,
                      count, sum, sum2);
    }
  }
  const int b = learner_members_[learner];
  for (int i = 0; i < count; ++i) {
    const double m = sum[i] / b;
    const double s = sum2[i] / b;
    mean[i] = m;
    variance[i] = std::max(0.0, s - m * m);
  }
}

void CompiledForest::PredictBatch(const FeatureMatrixView& x, double effort,
                                  const ParallelismConfig& parallelism,
                                  std::vector<Prediction>* out) const {
  const int n = x.rows();
  out->resize(n);
  if (n == 0) return;
  CheckOrDie(x.cols() >= num_features_,
             "CompiledForest: feature rows too narrow");
  const int q = NumQualified(effort);
  auto run_block = [&](int lo, int cn) {
    const double* rows = x.Row(lo);
    ChunkScratch s;
    for (int r = 0; r < cn; ++r) s.idx[r] = r;
    std::fill(s.mean, s.mean + cn, 0.0);
    std::fill(s.second, s.second + cn, 0.0);
    double wsum = 0.0;
    for (int i = 0; i < q; ++i) {
      ScoreLearner(i, rows, x.cols(), s.idx, cn, s.sum, s.sum2, s.lmean,
                   s.lvar);
      const double w = weights_[i];
      wsum += w;
      for (int r = 0; r < cn; ++r) {
        s.mean[r] += w * s.lmean[r];
        s.second[r] += w * (s.lvar[r] + s.lmean[r] * s.lmean[r]);
      }
    }
    if (wsum <= 0.0) {
      // Effort below every threshold (or zero qualified weight): the
      // loosest learner's raw prediction, as the reference path does.
      ScoreLearner(0, rows, x.cols(), s.idx, cn, s.sum, s.sum2, s.lmean,
                   s.lvar);
      for (int r = 0; r < cn; ++r) {
        (*out)[lo + r] = Prediction{s.lmean[r], s.lvar[r]};
      }
      return;
    }
    for (int r = 0; r < cn; ++r) {
      const double m = s.mean[r] / wsum;
      const double sec = s.second[r] / wsum;
      (*out)[lo + r] = Prediction{m, std::max(0.0, sec - m * m)};
    }
  };
  ForEachBlock(parallelism, n, kRowBlock, run_block);
}

void CompiledForest::PredictBatch(const FeatureMatrixView& x,
                                  const std::vector<double>& efforts,
                                  const ParallelismConfig& parallelism,
                                  std::vector<Prediction>* out) const {
  const int n = x.rows();
  CheckOrDie(static_cast<int>(efforts.size()) == n,
             "CompiledForest: one effort per row required");
  out->resize(n);
  if (n == 0) return;
  CheckOrDie(x.cols() >= num_features_,
             "CompiledForest: feature rows too narrow");
  auto run_block = [&](int lo, int cn) {
    const double* rows = x.Row(lo);
    // Per-row qualified prefix length; learner i scores exactly the
    // rows with q[r] > i, compacted into `idx`, so accumulation per
    // row still runs in learner order — the reference's
    // gather-per-learner pass without copying any feature rows.
    ChunkScratch s;
    int max_q = 0;
    for (int r = 0; r < cn; ++r) {
      s.q[r] = NumQualified(efforts[lo + r]);
      max_q = std::max(max_q, s.q[r]);
    }
    std::fill(s.wsum, s.wsum + cn, 0.0);
    std::fill(s.mean, s.mean + cn, 0.0);
    std::fill(s.second, s.second + cn, 0.0);
    for (int i = 0; i < max_q; ++i) {
      int count = 0;
      for (int r = 0; r < cn; ++r) {
        if (s.q[r] > i) s.idx[count++] = r;
      }
      if (count == 0) continue;
      ScoreLearner(i, rows, x.cols(), s.idx, count, s.sum, s.sum2,
                   s.lmean, s.lvar);
      const double w = weights_[i];
      for (int j = 0; j < count; ++j) {
        const int r = s.idx[j];
        s.wsum[r] += w;
        s.mean[r] += w * s.lmean[j];
        s.second[r] += w * (s.lvar[j] + s.lmean[j] * s.lmean[j]);
      }
    }
    // Rows whose effort sits below every threshold (or whose
    // qualified weights sum to zero) fall back to the loosest learner.
    int fallback = 0;
    for (int r = 0; r < cn; ++r) {
      if (s.wsum[r] <= 0.0) s.idx[fallback++] = r;
    }
    if (fallback > 0) {
      ScoreLearner(0, rows, x.cols(), s.idx, fallback, s.sum, s.sum2,
                   s.lmean, s.lvar);
      for (int j = 0; j < fallback; ++j) {
        (*out)[lo + s.idx[j]] = Prediction{s.lmean[j], s.lvar[j]};
      }
    }
    for (int r = 0; r < cn; ++r) {
      if (s.wsum[r] <= 0.0) continue;
      const double m = s.mean[r] / s.wsum[r];
      const double sec = s.second[r] / s.wsum[r];
      (*out)[lo + r] = Prediction{m, std::max(0.0, sec - m * m)};
    }
  };
  ForEachBlock(parallelism, n, kRowBlock, run_block);
}

void CompiledForest::FillEffortCurves(const FeatureMatrixView& x,
                                      const std::vector<double>& effort_grid,
                                      const ParallelismConfig& parallelism,
                                      EffortCurveTable* table) const {
  const int n = x.rows();
  const int m = static_cast<int>(effort_grid.size());
  table->num_cells = n;
  table->prob.assign(static_cast<size_t>(n) * m, 0.0);
  table->variance.assign(static_cast<size_t>(n) * m, 0.0);
  if (n == 0) return;
  CheckOrDie(x.cols() >= num_features_,
             "CompiledForest: feature rows too narrow");
  // Score once: learners beyond the grid's top can never qualify; learner
  // 0 always runs because it serves the below-every-threshold fallback.
  const int q_max = NumQualified(effort_grid.back());
  const int num_scored = std::max(1, q_max);
  auto run_block = [&](int lo, int cn) {
    const double* rows = x.Row(lo);
    ChunkScratch s;
    for (int r = 0; r < cn; ++r) s.idx[r] = r;
    // Learner scores, [learner * cn + row]. The one heap buffer on
    // this path: its height is the learner count, which ChunkScratch
    // cannot bound.
    std::vector<double> lmean(static_cast<size_t>(num_scored) * cn);
    std::vector<double> lvar(static_cast<size_t>(num_scored) * cn);
    for (int i = 0; i < num_scored; ++i) {
      ScoreLearner(i, rows, x.cols(), s.idx, cn, s.sum, s.sum2,
                   lmean.data() + static_cast<size_t>(i) * cn,
                   lvar.data() + static_cast<size_t>(i) * cn);
    }
    // Weight prefix scan along the grid, one row at a time: extending
    // the running mixture with learner qi replays the reference's
    // from-zero accumulation (same terms, same order), so every grid
    // point is bit-identical while the per-point cost drops from O(K)
    // to amortized O(1). Row-major emission keeps the accumulators in
    // registers and the table writes sequential.
    const double* thresholds = thresholds_.data();
    const double* weights = weights_.data();
    for (int r = 0; r < cn; ++r) {
      double* prob_row =
          table->prob.data() + static_cast<size_t>(lo + r) * m;
      double* var_row =
          table->variance.data() + static_cast<size_t>(lo + r) * m;
      double wsum = 0.0, mean = 0.0, second = 0.0;
      int qi = 0;
      for (int k = 0; k < m; ++k) {
        while (qi < q_max && thresholds[qi] <= effort_grid[k]) {
          const double w = weights[qi];
          const double lm = lmean[static_cast<size_t>(qi) * cn + r];
          const double lv = lvar[static_cast<size_t>(qi) * cn + r];
          wsum += w;
          mean += w * lm;
          second += w * (lv + lm * lm);
          ++qi;
        }
        if (wsum <= 0.0) {
          prob_row[k] = lmean[r];
          var_row[k] = lvar[r];
        } else {
          const double mu = mean / wsum;
          const double sec = second / wsum;
          prob_row[k] = mu;
          var_row[k] = std::max(0.0, sec - mu * mu);
        }
      }
    }
  };
  ForEachBlock(parallelism, n, kCurveRowBlock, run_block);
}

}  // namespace paws
