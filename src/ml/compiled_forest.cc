#include "ml/compiled_forest.h"

#include <algorithm>
#include <cstddef>

#include "ml/bagging.h"
#include "ml/simd_traversal.h"

namespace paws {

// The gathered walks address node words as cursor * 2 (+1) over a flat
// 64-bit array, so the packed layout is a wire-level contract of the SIMD
// tiers, not an implementation detail.
static_assert(sizeof(CompiledForest::Node) == 16,
              "Node must pack to 16 bytes (two 64-bit gather words)");
static_assert(offsetof(CompiledForest::Node, feature) == 0 &&
                  offsetof(CompiledForest::Node, left) == 4 &&
                  offsetof(CompiledForest::Node, value) == 8,
              "Node word layout: feature|left then value");
static_assert(alignof(CompiledForest::Node) == 8,
              "Node alignment must divide the pool's 64-byte alignment");

namespace {

// One traversal step for one interleaved lane: cursor `c`, feature row
// `p`. Tree walking is a dependent-load chain (node -> child ->
// grandchild), so a single row is latency-bound; stepping four lanes with
// independent scalar cursors keeps four chains in flight per tree (named
// scalars, not a lane array — the array form spills to the stack and
// serializes the chains). A cursor parked on a leaf stays put (the
// `feature >= 0` select), and the right-child predicate `!(x <= value)`
// routes NaN features exactly as the reference DecisionTree::PredictRow
// ternary does.
#define PAWS_FOREST_STEP(c, p)                                              \
  {                                                                         \
    const CompiledForest::Node node = nodes[c];                             \
    const int next =                                                        \
        node.left +                                                         \
        static_cast<int>(                                                   \
            !((p)[node.feature >= 0 ? node.feature : 0] <= node.value));    \
    live |= static_cast<int>(node.feature >= 0);                            \
    (c) = node.feature >= 0 ? next : (c);                                   \
  }

// Walks one flattened tree over the selected rows, accumulating each leaf
// value and its square into sum/sum2. The first tree of a learner assigns
// instead (kAssign), so callers never pre-zero the accumulators. Starting
// the sums at the first member's value instead of 0.0 is bit-identical:
// 0.0 + v == v for every leaf probability (v >= 0).
template <bool kAssign>
void WalkTree(const CompiledForest::Node* nodes, int root, int depth,
              const double* rows, int stride, const int* idx, int count,
              double* sum, double* sum2) {
  int i = 0;
  // Interleaved traversal, four lanes per group: every cursor advances one
  // level per iteration, for at most `depth` iterations.
  for (; i + 4 <= count; i += 4) {
    const double* p0 = rows + static_cast<size_t>(idx[i]) * stride;
    const double* p1 = rows + static_cast<size_t>(idx[i + 1]) * stride;
    const double* p2 = rows + static_cast<size_t>(idx[i + 2]) * stride;
    const double* p3 = rows + static_cast<size_t>(idx[i + 3]) * stride;
    int c0 = root, c1 = root, c2 = root, c3 = root;
    for (int d = 0; d < depth; ++d) {
      int live = 0;
      PAWS_FOREST_STEP(c0, p0)
      PAWS_FOREST_STEP(c1, p1)
      PAWS_FOREST_STEP(c2, p2)
      PAWS_FOREST_STEP(c3, p3)
      // Every cursor parked on a leaf: done early — imbalanced trees put
      // most rows well short of the max depth.
      if (!live) break;
    }
    const double v0 = nodes[c0].value;
    const double v1 = nodes[c1].value;
    const double v2 = nodes[c2].value;
    const double v3 = nodes[c3].value;
    if (kAssign) {
      sum[i] = v0;
      sum2[i] = v0 * v0;
      sum[i + 1] = v1;
      sum2[i + 1] = v1 * v1;
      sum[i + 2] = v2;
      sum2[i + 2] = v2 * v2;
      sum[i + 3] = v3;
      sum2[i + 3] = v3 * v3;
    } else {
      sum[i] += v0;
      sum2[i] += v0 * v0;
      sum[i + 1] += v1;
      sum2[i + 1] += v1 * v1;
      sum[i + 2] += v2;
      sum2[i + 2] += v2 * v2;
      sum[i + 3] += v3;
      sum2[i + 3] += v3 * v3;
    }
  }
  for (; i < count; ++i) {  // remainder rows: plain serial walk
    const double* row = rows + static_cast<size_t>(idx[i]) * stride;
    int c = root;
    for (int f = nodes[c].feature; f >= 0; f = nodes[c].feature) {
      c = nodes[c].left + static_cast<int>(!(row[f] <= nodes[c].value));
    }
    const double p = nodes[c].value;
    if (kAssign) {
      sum[i] = p;
      sum2[i] = p * p;
    } else {
      sum[i] += p;
      sum2[i] += p * p;
    }
  }
}

}  // namespace

bool CompiledForest::FlattenTree(
    const std::vector<DecisionTree::Node>& nodes) {
  // Breadth-first renumbering: children are allocated adjacently in queue
  // order, so each level of the tree occupies one contiguous span — the
  // span the level-synchronous interleaved traversal hits.
  struct Item {
    int src;
    int32_t dst;
    int depth;
  };
  tree_root_.push_back(static_cast<int32_t>(nodes_.size()));
  tree_depth_.push_back(0);
  nodes_.emplace_back();
  std::vector<Item> queue{{0, tree_root_.back(), 0}};
  for (size_t head = 0; head < queue.size(); ++head) {
    const Item item = queue[head];
    if (item.src < 0 || item.src >= static_cast<int>(nodes.size()) ||
        queue.size() > nodes.size()) {
      return false;  // malformed tree: caller abandons compilation
    }
    const DecisionTree::Node& node = nodes[item.src];
    if (node.left < 0) {
      nodes_[item.dst] = Node{-1, 0, node.prob};
      tree_depth_.back() = std::max(tree_depth_.back(), item.depth);
      continue;
    }
    if (node.feature < 0) return false;
    const int32_t kids = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_.emplace_back();
    nodes_[item.dst] = Node{node.feature, kids, node.threshold};
    num_features_ = std::max(num_features_, node.feature + 1);
    queue.push_back({node.left, kids, item.depth + 1});
    queue.push_back({node.right, kids + 1, item.depth + 1});
  }
  return true;
}

std::unique_ptr<CompiledForest> CompiledForest::Compile(
    const std::vector<std::unique_ptr<Classifier>>& learners,
    const std::vector<double>& thresholds,
    const std::vector<double>& weights) {
  return CompileWithTier(learners, thresholds, weights, ActiveSimdTier());
}

std::unique_ptr<CompiledForest> CompiledForest::CompileWithTier(
    const std::vector<std::unique_ptr<Classifier>>& learners,
    const std::vector<double>& thresholds, const std::vector<double>& weights,
    SimdTier tier) {
  if (!ValidEnsembleShape(learners, thresholds, weights)) return nullptr;
  std::unique_ptr<CompiledForest> forest(new CompiledForest());
  tier = std::min(tier, DetectSimdTier());
  forest->simd_walk_ = internal::GetSimdWalker(tier);
  if (forest->simd_walk_ == nullptr) tier = SimdTier::kScalar;
  forest->tier_ = tier;
  switch (tier) {
    case SimdTier::kAvx2:
      forest->name_ = "compiled-dtb-avx2";
      break;
    case SimdTier::kAvx512:
      forest->name_ = "compiled-dtb-avx512";
      break;
    case SimdTier::kScalar:
      forest->name_ = "compiled-dtb";
      break;
  }
  forest->thresholds_ = thresholds;
  forest->weights_ = weights;
  forest->learner_tree_begin_.push_back(0);
  for (const auto& learner : learners) {
    const auto* bag = dynamic_cast<const BaggingClassifier*>(learner.get());
    if (bag == nullptr || bag->num_fitted() == 0) return nullptr;
    for (int b = 0; b < bag->num_fitted(); ++b) {
      const auto* tree = dynamic_cast<const DecisionTree*>(&bag->member(b));
      if (tree == nullptr || tree->NodeCount() == 0) return nullptr;
      if (!forest->FlattenTree(tree->nodes())) return nullptr;
    }
    forest->learner_members_.push_back(bag->num_fitted());
    forest->learner_tree_begin_.push_back(
        static_cast<int32_t>(forest->tree_root_.size()));
  }
  return forest;
}

void CompiledForest::ScoreLearner(int learner, const double* rows, int stride,
                                  const int* idx, int count, double* sum,
                                  double* sum2, double* mean,
                                  double* variance) const {
  const Node* nodes = nodes_.data();
  const int tree_begin = learner_tree_begin_[learner];
  const int tree_end = learner_tree_begin_[learner + 1];
  for (int t = tree_begin; t < tree_end; ++t) {
    // Tier dispatch per tree walk: the gathered walkers accumulate each
    // row's leaf value with exactly the scalar arithmetic (same NaN
    // routing, same leaf parking, same add order per row), so every tier
    // is bit-identical — only rows-in-flight differ.
    if (simd_walk_ != nullptr) {
      simd_walk_(nodes, tree_root_[t], tree_depth_[t], rows, stride, idx,
                 count, sum, sum2, /*assign=*/t == tree_begin);
    } else if (t == tree_begin) {
      WalkTree<true>(nodes, tree_root_[t], tree_depth_[t], rows, stride, idx,
                     count, sum, sum2);
    } else {
      WalkTree<false>(nodes, tree_root_[t], tree_depth_[t], rows, stride, idx,
                      count, sum, sum2);
    }
  }
  const int b = learner_members_[learner];
  for (int i = 0; i < count; ++i) {
    const double m = sum[i] / b;
    const double s = sum2[i] / b;
    mean[i] = m;
    variance[i] = std::max(0.0, s - m * m);
  }
}

}  // namespace paws
