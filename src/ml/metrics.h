#ifndef PAWS_ML_METRICS_H_
#define PAWS_ML_METRICS_H_

#include <vector>

#include "util/status.h"

namespace paws {

/// Area under the ROC curve via the rank-sum (Mann-Whitney) formulation,
/// with the standard tie correction. Requires at least one positive and one
/// negative label; returns InvalidArgument otherwise.
StatusOr<double> AucRoc(const std::vector<double>& scores,
                        const std::vector<int>& labels);

/// Mean binary cross-entropy. Probabilities are clipped to
/// [eps, 1 - eps] to keep the loss finite.
double LogLoss(const std::vector<double>& probs, const std::vector<int>& labels,
               double eps = 1e-9);

/// Mean squared error between probabilities and binary labels.
double BrierScore(const std::vector<double>& probs,
                  const std::vector<int>& labels);

/// Fraction of rows where (prob >= threshold) matches the label.
double Accuracy(const std::vector<double>& probs, const std::vector<int>& labels,
                double threshold = 0.5);

/// Precision and recall at a threshold. Precision is 1 when there are no
/// predicted positives; recall is 1 when there are no actual positives.
struct PrecisionRecall {
  double precision = 1.0;
  double recall = 1.0;
};
PrecisionRecall PrecisionRecallAt(const std::vector<double>& probs,
                                  const std::vector<int>& labels,
                                  double threshold = 0.5);

}  // namespace paws

#endif  // PAWS_ML_METRICS_H_
