#ifndef PAWS_ML_DATASET_IO_H_
#define PAWS_ML_DATASET_IO_H_

#include <string>

#include "ml/dataset.h"
#include "util/archive.h"
#include "util/status.h"

namespace paws {

/// Dataset import/export in two formats sharing one encoding stack:
///
/// - *Binary* (Save/LoadDataset, Write/ReadDatasetBinary): the archive
///   layer models and snapshots use — endian-safe, CRC-checked,
///   bit-exact on doubles, and the natural companion to a model snapshot
///   (same container, same corruption guarantees).
/// - *CSV* (below): interchange with SMART-style exports.
///
/// CSV import/export for datasets, so the pipeline can run on real
/// SMART-style exports instead of the synthetic simulator. The format is
/// the one the dataset builders produce:
///
///   label,effort,time_step,cell_id,f0,f1,...,f{k-1}
///
/// - `label` is 0/1, `effort` a non-negative float (km patrolled in the
///   cell during the time step);
/// - `time_step` and `cell_id` are optional integers (-1 when absent);
/// - remaining columns are the static features plus (by the paper's
///   convention) the lagged patrol coverage as the final feature.
/// The header row is required and validated on read.

/// Serializes `data` to CSV text.
std::string DatasetToCsv(const Dataset& data);

/// Writes `data` to `path` (created or truncated).
Status WriteDatasetCsv(const Dataset& data, const std::string& path);

/// Parses a dataset from CSV text. Fails with InvalidArgument on malformed
/// headers, ragged rows, non-binary labels, or negative effort.
StatusOr<Dataset> DatasetFromCsv(const std::string& text);

/// Reads a dataset from a CSV file.
StatusOr<Dataset> ReadDatasetCsv(const std::string& path);

/// Serializes `data` into an open archive (a "DSET" section), bit-exact on
/// features and efforts. Validation on load mirrors the CSV reader:
/// binary labels, non-negative efforts, consistent widths.
void SaveDataset(const Dataset& data, ArchiveWriter* ar);
StatusOr<Dataset> LoadDataset(ArchiveReader* ar);

/// Whole-file binary round trip (one dataset per archive).
Status WriteDatasetBinary(const Dataset& data, const std::string& path);
StatusOr<Dataset> ReadDatasetBinary(const std::string& path);

}  // namespace paws

#endif  // PAWS_ML_DATASET_IO_H_
