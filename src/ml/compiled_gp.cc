#include "ml/compiled_gp.h"

#include <algorithm>
#include <cmath>

#include "ml/bagging.h"
#include "ml/gaussian_process.h"
#include "ml/kernel_block.h"
#include "util/cpu_features.h"
#include "util/special.h"

namespace paws {

std::unique_ptr<CompiledGpEnsemble> CompiledGpEnsemble::Compile(
    const std::vector<std::unique_ptr<Classifier>>& learners,
    const std::vector<double>& thresholds,
    const std::vector<double>& weights) {
  if (!ValidEnsembleShape(learners, thresholds, weights)) return nullptr;
  std::unique_ptr<CompiledGpEnsemble> gp(new CompiledGpEnsemble());
  gp->thresholds_ = thresholds;
  gp->weights_ = weights;
  gp->learner_member_begin_.push_back(0);
  int k = -1;
  for (const auto& learner : learners) {
    const auto* bag = dynamic_cast<const BaggingClassifier*>(learner.get());
    if (bag == nullptr || bag->num_fitted() == 0) return nullptr;
    for (int b = 0; b < bag->num_fitted(); ++b) {
      const auto* member =
          dynamic_cast<const GaussianProcessClassifier*>(&bag->member(b));
      if (member == nullptr || !member->fitted() ||
          member->num_inducing_points() == 0) {
        return nullptr;
      }
      const Standardizer& standardizer = member->standardizer();
      if (k < 0) k = standardizer.num_features();
      if (k <= 0 || standardizer.num_features() != k) return nullptr;
      const int n = member->num_inducing_points();
      const RbfKernel& kernel = member->effective_kernel();
      Member flat;
      flat.n = n;
      flat.length_scale = kernel.length_scale;
      flat.signal_variance = kernel.signal_variance;
      // Inducing inputs: one row-major block, replacing the reference
      // path's per-row heap vectors.
      flat.x_offset = gp->x_pool_.size();
      for (const std::vector<double>& row : member->inducing_inputs()) {
        if (static_cast<int>(row.size()) != k) return nullptr;
        gp->x_pool_.insert(gp->x_pool_.end(), row.begin(), row.end());
      }
      // Posterior vectors: likelihood gradient then W^1/2, back to back.
      if (member->grad_log_lik().size() != static_cast<size_t>(n) ||
          member->sqrt_w().size() != static_cast<size_t>(n)) {
        return nullptr;
      }
      flat.vec_offset = gp->vec_pool_.size();
      gp->vec_pool_.insert(gp->vec_pool_.end(), member->grad_log_lik().begin(),
                           member->grad_log_lik().end());
      gp->vec_pool_.insert(gp->vec_pool_.end(), member->sqrt_w().begin(),
                           member->sqrt_w().end());
      const Matrix& chol = member->chol_b();
      if (chol.rows() != n || chol.cols() != n) return nullptr;
      flat.chol_offset = gp->chol_pool_.size();
      for (int i = 0; i < n; ++i) {
        gp->chol_pool_.insert(gp->chol_pool_.end(), chol.Row(i),
                              chol.Row(i) + n);
      }
      flat.std_offset = gp->std_pool_.size();
      gp->std_pool_.insert(gp->std_pool_.end(), standardizer.mean().begin(),
                           standardizer.mean().end());
      gp->std_pool_.insert(gp->std_pool_.end(), standardizer.stddev().begin(),
                           standardizer.stddev().end());
      gp->max_inducing_ = std::max(gp->max_inducing_, n);
      gp->members_.push_back(flat);
    }
    gp->learner_member_begin_.push_back(
        static_cast<int32_t>(gp->members_.size()));
  }
  gp->num_features_ = k;
  // Same resolution moment as CompiledForest: backend selection pins the
  // lane width, so PAWS_FORCE_BACKEND + set_compiled_serving(true) re-pins.
  gp->lanes_ = internal::GetGpLaneOps(ActiveSimdTier());
  return gp;
}

void CompiledGpEnsemble::ScoreLearner(int learner, const double* rows,
                                      int stride, const int* idx, int count,
                                      double* sum, double* sum2, double* mean,
                                      double* variance) const {
  // Reusable per-thread scratch: ScoreLearner must be concurrent-safe
  // (const, called from ParallelFor workers) and allocation-free on the
  // steady state — the reference path re-mallocs these buffers on every
  // member call.
  static thread_local std::vector<double> zt;     // standardized rows, k x m
  static thread_local std::vector<double> work;   // sq then K_* then V, n x m
  static thread_local std::vector<double> lmean;  // latent means, m
  static thread_local std::vector<double> lvar;   // sum of V^2, m

  const int m = count;
  const int k = num_features_;
  const int member_begin = learner_member_begin_[learner];
  const int member_end = learner_member_begin_[learner + 1];
  zt.resize(static_cast<size_t>(k) * m);
  work.resize(static_cast<size_t>(max_inducing_) * m);
  lmean.resize(m);
  lvar.resize(m);
  for (int mem = member_begin; mem < member_end; ++mem) {
    const Member& gp = members_[mem];
    const int n = gp.n;
    const double* mu = std_pool_.data() + gp.std_offset;
    const double* sd = mu + k;
    // Standardize the selected rows, stored transposed (zt[f * m + j]) so
    // the distance sweep below reads one contiguous lane row per feature.
    // Same `(x - mu) / sd` divide as the reference, element-independent;
    // widened tiers gather the strided row reads.
    lanes_->StandardizeT(rows, stride, idx, m, k, mu, sd, zt.data());
    // Cross-covariance block. Per column the squared distance accumulates
    // in feature order — RbfKernel::Eval's reduction, which the compiler
    // may never reorder (and so never vectorizes in the reference's
    // one-column-at-a-time calls). The tier-dispatched kernel runs the
    // lanes ACROSS columns (register-blocked over inducing rows), so the
    // per-column chains overlap while each stays bit-exact; the
    // `signal_variance * exp(-sq / (2 l^2))` tail is verbatim Eval, left
    // to scalar libm so the transcendental rounds exactly as the
    // reference's call does.
    const double* xt = x_pool_.data() + gp.x_offset;
    const double denom = 2.0 * gp.length_scale * gp.length_scale;
    lanes_->CrossKernelSq(xt, n, k, zt.data(), m, work.data());
    lanes_->KernelTail(gp.signal_variance, denom, work.data(), n, m);
    // Latent means: i-ascending accumulation, matching the reference (and
    // the one-row dot product) bit for bit.
    const double* grad = vec_pool_.data() + gp.vec_offset;
    const double* sqrt_w = grad + n;
    std::fill(lmean.begin(), lmean.begin() + m, 0.0);
    for (int i = 0; i < n; ++i) {
      lanes_->AccumScaled(grad[i], work.data() + static_cast<size_t>(i) * m,
                          lmean.data(), m);
    }
    // Multi-RHS forward substitution in place, V = L \ (W^1/2 K_*): per
    // column the reference op order exactly (scale, p-ascending subtracts,
    // divide), columns as independent lanes, pivot loop blocked.
    lanes_->ForwardSubst(chol_pool_.data() + gp.chol_offset, sqrt_w, n,
                         work.data(), m);
    std::fill(lvar.begin(), lvar.begin() + m, 0.0);
    for (int i = 0; i < n; ++i) {
      lanes_->AccumSquare(work.data() + static_cast<size_t>(i) * m,
                          lvar.data(), m);
    }
    // MacKay-averaged probability per column, then the bagging member
    // accumulation: GP members carry intrinsic variance, so sum2 collects
    // `variance + prob^2` — BaggingClassifier::PredictBatchWithVariance's
    // second moment, first member assigning.
    const double prior = gp.signal_variance;
    for (int j = 0; j < m; ++j) {
      const double v = std::max(0.0, prior - lvar[j]);
      const double kappa = 1.0 / std::sqrt(1.0 + M_PI * v / 8.0);
      const double prob = Sigmoid(kappa * lmean[j]);
      if (mem == member_begin) {
        sum[j] = prob;
        sum2[j] = v + prob * prob;
      } else {
        sum[j] += prob;
        sum2[j] += v + prob * prob;
      }
    }
  }
  const int b = member_end - member_begin;
  for (int j = 0; j < m; ++j) {
    const double mm = sum[j] / b;
    const double ss = sum2[j] / b;
    mean[j] = mm;
    variance[j] = std::max(0.0, ss - mm * mm);
  }
}

}  // namespace paws
