#ifndef PAWS_ML_EXP_LANE_H_
#define PAWS_ML_EXP_LANE_H_

#include "util/cpu_features.h"

namespace paws {
namespace internal {

/// Signature of GpLaneOps::KernelTail: w[i*m+j] = sv * exp(-w[i*m+j] / denom).
using KernelTailFn = void (*)(double sv, double denom, double* w, int n,
                              int m);

/// Vectorized kernel tail for `tier`, or nullptr when the scalar tail must
/// stay. The exp inside the tail is the expensive part: libm's exp is
/// scalar, and the bit-identity contract forbids a merely-accurate vector
/// substitute — every tier must reproduce the reference transcendental to
/// the last bit. This resolver makes that possible by REPLAYING the exact
/// exp implementation glibc's ifunc selects on FMA hosts (table-driven
/// 2^(k/N)*exp(r), N=128) lane-parallel, with the same fused steps the
/// compiled libm uses:
///
///   kd  = fma(x, InvLn2N, Shift); ki = bits(kd); kd -= Shift
///   r   = fma(kd, NegLn2loN, fma(kd, NegLn2hiN, x))
///   tmp = fma(r2*r2, fma(r, C5, C4), fma(r2, fma(r, C3, C2), tab[2i] + r))
///   exp = fma(scale, tmp, scale),  scale = bits(tab[2i+1] + (ki << 45))
///
/// The coefficient/table block is not exported by libm, so the resolver
/// locates it by byte signature inside the mapped libm image's file and
/// then proves the replay: it sweeps ~10^5 probes (every exponent through
/// and beyond the fast-path gate, k-boundary-adjacent points, NaN/inf/
/// tiny/huge) and requires the vector tail to match the scalar loop
/// bit-for-bit. Any miss — different libc, changed algorithm, missing
/// table — resolves to nullptr and the scalar tail stays. Lanes outside
/// the fast-path gate (|x| < 2^-54 or >= 512, NaN, inf) are computed with
/// scalar std::exp inside the vector tail, exactly as libm routes them.
KernelTailFn GetVectorKernelTail(SimdTier tier);

}  // namespace internal
}  // namespace paws

#endif  // PAWS_ML_EXP_LANE_H_
