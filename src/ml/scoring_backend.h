#ifndef PAWS_ML_SCORING_BACKEND_H_
#define PAWS_ML_SCORING_BACKEND_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/effort_curve.h"
#include "util/feature_matrix.h"
#include "util/thread_pool.h"

namespace paws {

/// Non-owning view of an iWare-E ensemble's weak-learner state, passed into
/// every ScoringBackend call. Backends that serve straight off the fitted
/// learners (the reference path) read it; compiled backends own flattened
/// copies of everything they need and ignore it. Passing the view per call
/// (rather than capturing pointers at backend-construction time) keeps
/// backends valid across moves of the owning ensemble.
struct WeakLearnerSetView {
  const std::vector<std::unique_ptr<Classifier>>& learners;
  /// Ascending effort thresholds, parallel to `learners`: learner i votes
  /// when thresholds[i] <= the hypothetical effort.
  const std::vector<double>& thresholds;
  /// Mixing weights, parallel to `learners`.
  const std::vector<double>& weights;
};

/// The serving seam of an iWare-E ensemble: one implementation of the three
/// batched scoring calls (shared-effort batches, per-row-effort batches,
/// effort-curve tables). IWareEnsemble selects a backend per ensemble when
/// the learner set changes (Fit / Load / set_compiled_serving) and
/// delegates every serving call to it, so the hot paths carry no per-call
/// branching on learner kind.
///
/// Contract: every backend is bit-identical to the reference path — member
/// probabilities accumulate in member order, learner mixtures in learner
/// order, and each divide / clamp happens exactly where the reference
/// performs it. Backends must be safe for concurrent const calls.
class ScoringBackend {
 public:
  virtual ~ScoringBackend() = default;

  /// Stable identifier for logs/tests/stats, one of
  /// kScoringBackendNames below. Compiled-forest names carry the SIMD
  /// dispatch tier as a suffix ("compiled-dtb-avx2"), so operators can
  /// read what a serving process actually dispatches.
  virtual const char* name() const = 0;

  /// Batch prediction under one shared hypothetical effort (the risk-map
  /// hot path).
  virtual void PredictBatch(const WeakLearnerSetView& ensemble,
                            const FeatureMatrixView& x, double effort,
                            const ParallelismConfig& parallelism,
                            std::vector<Prediction>* out) const = 0;

  /// Batch prediction with per-row efforts (dataset scoring).
  virtual void PredictBatch(const WeakLearnerSetView& ensemble,
                            const FeatureMatrixView& x,
                            const std::vector<double>& efforts,
                            const ParallelismConfig& parallelism,
                            std::vector<Prediction>* out) const = 0;

  /// Fills `table->num_cells`, `table->prob` and `table->variance` for the
  /// strictly increasing `effort_grid`; the caller owns `effort_grid` and
  /// `qualified_count`.
  virtual void FillEffortCurves(const WeakLearnerSetView& ensemble,
                                const FeatureMatrixView& x,
                                const std::vector<double>& effort_grid,
                                const ParallelismConfig& parallelism,
                                EffortCurveTable* table) const = 0;
};

/// Every backend name a PAWS build can report — the canonical list that
/// docs/ARCHITECTURE.md's dispatch-tier table is checked against
/// (scripts/check_docs.py parses this array). Keep entries one per line.
inline constexpr const char* kScoringBackendNames[] = {
    "reference",
    "compiled-dtb",
    "compiled-dtb-avx2",
    "compiled-dtb-avx512",
    "compiled-svb",
    "compiled-gp",
};

/// The reference backend: virtual-dispatch scoring through the learners'
/// own PredictBatchWithVariance, mixed per row. Works for every learner
/// kind; the compiled backends are measured (and tested) against it.
std::unique_ptr<ScoringBackend> MakeReferenceScoringBackend();

/// Picks the fastest backend the learner set supports: compiled-DTB (at
/// the active SIMD dispatch tier — see util/cpu_features.h and the
/// PAWS_FORCE_BACKEND override) for baggings of decision trees,
/// compiled-SVB for baggings of linear SVMs, compiled-GP for baggings of
/// Gaussian processes, otherwise the reference backend. Never returns
/// nullptr.
std::unique_ptr<ScoringBackend> SelectScoringBackend(
    const std::vector<std::unique_ptr<Classifier>>& learners,
    const std::vector<double>& thresholds,
    const std::vector<double>& weights);

}  // namespace paws

#endif  // PAWS_ML_SCORING_BACKEND_H_
