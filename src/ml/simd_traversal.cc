#include "ml/simd_traversal.h"

// Gathered forest traversal, runtime-dispatched per CPU tier. Each walker
// is a single self-contained function carrying its own `target` attribute,
// so the file builds with the baseline ISA flags and never leaks AVX
// codegen into the rest of the library. FMA is deliberately never enabled:
// contraction of the `sum2 += v * v` updates would change rounding and
// break the repo-wide bit-identity contract.
//
// Node recap (CompiledForest::Node, 16 bytes, 64-byte-aligned pool):
//   word 0: feature (low 32 bits, -1 for leaves) | left child (high 32)
//   word 1: value (split threshold, or leaf probability)
// Per traversal step a lane gathers word 0 and word 1 at byte offset
// cursor * 16, loads its feature, and steps to left + !(x <= value) —
// parked (leaf) lanes keep their cursor via a mask blend, exactly like
// the scalar macro's `feature >= 0 ? next : c` select.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PAWS_SIMD_TRAVERSAL_X86 1
#include <immintrin.h>

#include <cstdint>
#endif

namespace paws {
namespace internal {

namespace {

// Remainder rows (fewer than one lane group): the same serial walk the
// scalar backend uses for its own remainder — trivially bit-identical.
void WalkRowsSerial(const CompiledForest::Node* nodes, int root,
                    const double* rows, int stride, const int* idx, int begin,
                    int count, double* sum, double* sum2, bool assign) {
  for (int i = begin; i < count; ++i) {
    const double* row = rows + static_cast<size_t>(idx[i]) * stride;
    int c = root;
    for (int f = nodes[c].feature; f >= 0; f = nodes[c].feature) {
      c = nodes[c].left + static_cast<int>(!(row[f] <= nodes[c].value));
    }
    const double p = nodes[c].value;
    if (assign) {
      sum[i] = p;
      sum2[i] = p * p;
    } else {
      sum[i] += p;
      sum2[i] += p * p;
    }
  }
}

#if defined(PAWS_SIMD_TRAVERSAL_X86)

// ---------------------------------------------------------------------------
// AVX2: G independent 4-lane cursor groups walk together. The walk is
// bound by gather latency, not lane width — each level's node gather
// depends on the previous level's cursors — so the lever is independent
// chains in flight: with G=4 the out-of-order core overlaps 16 rows'
// node-line misses per level, which is what beats the scalar walk on
// large (cache-cold) pools. The group count steps down 4 -> 2 -> 1 so
// small batches still get vector groups before the serial remainder.

template <int G>
__attribute__((target("avx2"))) int WalkGroupsAvx2(
    const CompiledForest::Node* nodes, int root, int depth, const double* rows,
    int stride, const int* idx, int begin, int count, double* sum,
    double* sum2, bool assign) {
  const long long* nll = reinterpret_cast<const long long*>(nodes);
  const double* nd = reinterpret_cast<const double*>(nodes);
  const __m256i low32 = _mm256_set1_epi64x(0xffffffffll);
  const __m256i one = _mm256_set1_epi64x(1);
  int i = begin;
  for (; i + 4 * G <= count; i += 4 * G) {
    __m256i base[G], c[G];
    for (int g = 0; g < G; ++g) {
      base[g] = _mm256_set_epi64x(
          static_cast<int64_t>(idx[i + 4 * g + 3]) * stride,
          static_cast<int64_t>(idx[i + 4 * g + 2]) * stride,
          static_cast<int64_t>(idx[i + 4 * g + 1]) * stride,
          static_cast<int64_t>(idx[i + 4 * g]) * stride);
      c[g] = _mm256_set1_epi64x(root);
    }
    for (int d = 0; d < depth; ++d) {
      __m256i meta[G], leaf[G];
      __m256d val[G];
      for (int g = 0; g < G; ++g) {
        const __m256i c2 = _mm256_slli_epi64(c[g], 1);
        meta[g] = _mm256_i64gather_epi64(nll, c2, 8);
        val[g] = _mm256_i64gather_pd(nd + 1, c2, 8);
      }
      int parked = -1;
      for (int g = 0; g < G; ++g) {
        // feature == -1 (leaf) shows as an all-ones low word; features
        // are never negative otherwise, so equality with low32 is exact.
        leaf[g] = _mm256_cmpeq_epi64(_mm256_and_si256(meta[g], low32),
                                     low32);
        parked &= _mm256_movemask_epi8(leaf[g]);
      }
      if (parked == -1) {
        break;  // every lane parked on a leaf — same early-out as scalar
      }
      for (int g = 0; g < G; ++g) {
        // Parked lanes read feature 0 (harmlessly, like the scalar
        // macro's `feature >= 0 ? feature : 0` clamp) and are blended
        // back below.
        const __m256i fc = _mm256_andnot_si256(
            leaf[g], _mm256_and_si256(meta[g], low32));
        const __m256d x =
            _mm256_i64gather_pd(rows, _mm256_add_epi64(base[g], fc), 8);
        // _CMP_LE_OQ is false for NaN, so NaN features step right — the
        // reference `!(x <= value)` routing.
        const __m256d le = _mm256_cmp_pd(x, val[g], _CMP_LE_OQ);
        // next = left + 1 + le (le is -1 when taking the left child).
        const __m256i next =
            _mm256_add_epi64(_mm256_srli_epi64(meta[g], 32),
                             _mm256_add_epi64(one, _mm256_castpd_si256(le)));
        c[g] = _mm256_blendv_epi8(next, c[g], leaf[g]);
      }
    }
    for (int g = 0; g < G; ++g) {
      const __m256d va =
          _mm256_i64gather_pd(nd + 1, _mm256_slli_epi64(c[g], 1), 8);
      const __m256d va2 = _mm256_mul_pd(va, va);
      double* s = sum + i + 4 * g;
      double* s2 = sum2 + i + 4 * g;
      if (assign) {
        _mm256_storeu_pd(s, va);
        _mm256_storeu_pd(s2, va2);
      } else {
        _mm256_storeu_pd(s, _mm256_add_pd(_mm256_loadu_pd(s), va));
        _mm256_storeu_pd(s2, _mm256_add_pd(_mm256_loadu_pd(s2), va2));
      }
    }
  }
  return i;
}

__attribute__((target("avx2"))) void WalkTreeAvx2(
    const CompiledForest::Node* nodes, int root, int depth, const double* rows,
    int stride, const int* idx, int count, double* sum, double* sum2,
    bool assign) {
  int i = WalkGroupsAvx2<4>(nodes, root, depth, rows, stride, idx, 0, count,
                            sum, sum2, assign);
  i = WalkGroupsAvx2<2>(nodes, root, depth, rows, stride, idx, i, count, sum,
                        sum2, assign);
  i = WalkGroupsAvx2<1>(nodes, root, depth, rows, stride, idx, i, count, sum,
                        sum2, assign);
  WalkRowsSerial(nodes, root, rows, stride, idx, i, count, sum, sum2, assign);
}

// ---------------------------------------------------------------------------
// AVX-512F: same structure with 8-lane groups and mask registers doing the
// leaf parking — G=4 keeps 32 rows' gather chains in flight per level.

template <int G>
__attribute__((target("avx512f"))) int WalkGroupsAvx512(
    const CompiledForest::Node* nodes, int root, int depth, const double* rows,
    int stride, const int* idx, int begin, int count, double* sum,
    double* sum2, bool assign) {
  const long long* nll = reinterpret_cast<const long long*>(nodes);
  const double* nd = reinterpret_cast<const double*>(nodes);
  const __m512i low32 = _mm512_set1_epi64(0xffffffffll);
  const __m512i one = _mm512_set1_epi64(1);
  int i = begin;
  for (; i + 8 * G <= count; i += 8 * G) {
    alignas(64) int64_t offs[8 * G];
    for (int j = 0; j < 8 * G; ++j) {
      offs[j] = static_cast<int64_t>(idx[i + j]) * stride;
    }
    __m512i base[G], c[G];
    for (int g = 0; g < G; ++g) {
      base[g] = _mm512_load_si512(offs + 8 * g);
      c[g] = _mm512_set1_epi64(root);
    }
    for (int d = 0; d < depth; ++d) {
      __m512i meta[G];
      __m512d val[G];
      __mmask8 leaf[G];
      for (int g = 0; g < G; ++g) {
        const __m512i c2 = _mm512_slli_epi64(c[g], 1);
        meta[g] = _mm512_i64gather_epi64(c2, nll, 8);
        val[g] = _mm512_i64gather_pd(c2, nd + 1, 8);
      }
      __mmask8 parked = 0xff;
      for (int g = 0; g < G; ++g) {
        leaf[g] = _mm512_cmpeq_epi64_mask(_mm512_and_si512(meta[g], low32),
                                          low32);
        parked &= leaf[g];
      }
      if (parked == 0xff) break;
      for (int g = 0; g < G; ++g) {
        const __m512i fc = _mm512_maskz_mov_epi64(
            static_cast<__mmask8>(~leaf[g]),
            _mm512_and_si512(meta[g], low32));
        const __m512d x =
            _mm512_i64gather_pd(_mm512_add_epi64(base[g], fc), rows, 8);
        const __mmask8 le = _mm512_cmp_pd_mask(x, val[g], _CMP_LE_OQ);
        const __m512i left = _mm512_srli_epi64(meta[g], 32);
        // next = left where x <= value, left + 1 otherwise.
        const __m512i next = _mm512_mask_add_epi64(
            left, static_cast<__mmask8>(~le), left, one);
        c[g] = _mm512_mask_blend_epi64(leaf[g], next, c[g]);
      }
    }
    for (int g = 0; g < G; ++g) {
      const __m512d va =
          _mm512_i64gather_pd(_mm512_slli_epi64(c[g], 1), nd + 1, 8);
      const __m512d va2 = _mm512_mul_pd(va, va);
      double* s = sum + i + 8 * g;
      double* s2 = sum2 + i + 8 * g;
      if (assign) {
        _mm512_storeu_pd(s, va);
        _mm512_storeu_pd(s2, va2);
      } else {
        _mm512_storeu_pd(s, _mm512_add_pd(_mm512_loadu_pd(s), va));
        _mm512_storeu_pd(s2, _mm512_add_pd(_mm512_loadu_pd(s2), va2));
      }
    }
  }
  return i;
}

__attribute__((target("avx512f"))) void WalkTreeAvx512(
    const CompiledForest::Node* nodes, int root, int depth, const double* rows,
    int stride, const int* idx, int count, double* sum, double* sum2,
    bool assign) {
  int i = WalkGroupsAvx512<4>(nodes, root, depth, rows, stride, idx, 0, count,
                              sum, sum2, assign);
  i = WalkGroupsAvx512<2>(nodes, root, depth, rows, stride, idx, i, count,
                          sum, sum2, assign);
  i = WalkGroupsAvx512<1>(nodes, root, depth, rows, stride, idx, i, count,
                          sum, sum2, assign);
  WalkRowsSerial(nodes, root, rows, stride, idx, i, count, sum, sum2, assign);
}

#endif  // PAWS_SIMD_TRAVERSAL_X86

}  // namespace

SimdWalkTreeFn GetSimdWalker(SimdTier tier) {
#if defined(PAWS_SIMD_TRAVERSAL_X86)
  switch (tier) {
    case SimdTier::kAvx2:
      return &WalkTreeAvx2;
    case SimdTier::kAvx512:
      return &WalkTreeAvx512;
    case SimdTier::kScalar:
      return nullptr;
  }
#else
  (void)tier;
#endif
  return nullptr;
}

}  // namespace internal
}  // namespace paws
