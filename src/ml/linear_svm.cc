#include "ml/linear_svm.h"

#include <algorithm>
#include <cmath>

#include "util/matrix.h"
#include "util/special.h"

namespace paws {

namespace {

constexpr uint32_t kSvmSchemaVersion = 1;

}  // namespace

void SaveLinearSvmConfig(const LinearSvmConfig& config, ArchiveWriter* ar) {
  ar->WriteDouble(config.lambda);
  ar->WriteI32(config.epochs);
  ar->WriteI32(config.platt_iterations);
}

StatusOr<LinearSvmConfig> LoadLinearSvmConfig(ArchiveReader* ar) {
  LinearSvmConfig config;
  PAWS_RETURN_IF_ERROR(ar->ReadDouble(&config.lambda));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&config.epochs));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&config.platt_iterations));
  return config;
}

Status LinearSvm::Fit(const Dataset& data, Rng* rng) {
  if (data.empty()) return Status::InvalidArgument("LinearSvm: empty data");
  CheckOrDie(rng != nullptr, "LinearSvm::Fit requires an Rng");
  const int n = data.size();
  const int k = data.num_features();
  standardizer_ = Standardizer::Fit(data);
  std::vector<std::vector<double>> x(n);
  std::vector<int> y(n);  // +/- 1
  for (int i = 0; i < n; ++i) {
    x[i] = standardizer_.Transform(data.RowVector(i));
    y[i] = data.label(i) == 1 ? 1 : -1;
  }

  weights_.assign(k, 0.0);
  bias_ = 0.0;
  // Pegasos: step size 1/(lambda * t).
  long t = 1;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<int> order = rng->Permutation(n);
    for (int idx : order) {
      const double eta = 1.0 / (config_.lambda * t);
      const double margin = y[idx] * (Dot(weights_, x[idx]) + bias_);
      for (int f = 0; f < k; ++f) {
        weights_[f] *= (1.0 - eta * config_.lambda);
      }
      if (margin < 1.0) {
        const double scale = eta * y[idx];
        for (int f = 0; f < k; ++f) weights_[f] += scale * x[idx][f];
        bias_ += scale;
      }
      ++t;
    }
  }

  // Platt scaling on training margins (Newton iterations on the two-
  // parameter logistic). Targets use Platt's label smoothing.
  int n_pos = 0;
  for (int i = 0; i < n; ++i) n_pos += data.label(i);
  const int n_neg = n - n_pos;
  const double t_pos = (n_pos + 1.0) / (n_pos + 2.0);
  const double t_neg = 1.0 / (n_neg + 2.0);
  std::vector<double> f(n), target(n);
  for (int i = 0; i < n; ++i) {
    f[i] = Dot(weights_, x[i]) + bias_;
    target[i] = data.label(i) == 1 ? t_pos : t_neg;
  }
  double a = 0.0, b = std::log((n_neg + 1.0) / (n_pos + 1.0));
  for (int it = 0; it < config_.platt_iterations; ++it) {
    double g_a = 0.0, g_b = 0.0, h_aa = 1e-10, h_ab = 0.0, h_bb = 1e-10;
    for (int i = 0; i < n; ++i) {
      const double p = Sigmoid(-(a * f[i] + b));
      const double d = p - target[i];  // dL/d(af+b) = -(p - t) * ... sign
      // L = -sum t*log p + (1-t) log(1-p); with p = sigmoid(-(af+b)),
      // dL/da = (t - p) * f ; dL/db = (t - p).
      g_a += (target[i] - p) * f[i];
      g_b += (target[i] - p);
      const double w = p * (1.0 - p);
      h_aa += w * f[i] * f[i];
      h_ab += w * f[i];
      h_bb += w;
      (void)d;
    }
    // Newton step: solve H * delta = g (2x2).
    const double det = h_aa * h_bb - h_ab * h_ab;
    if (std::fabs(det) < 1e-14) break;
    const double da = (g_a * h_bb - g_b * h_ab) / det;
    const double db = (g_b * h_aa - g_a * h_ab) / det;
    a -= da;
    b -= db;
    if (std::fabs(da) + std::fabs(db) < 1e-10) break;
  }
  platt_a_ = a;
  platt_b_ = b;
  fitted_ = true;
  return Status::OK();
}

double LinearSvm::DecisionValueRow(const double* x) const {
  // Standardization fused into the dot product: no per-row temporary.
  const std::vector<double>& mean = standardizer_.mean();
  const std::vector<double>& stddev = standardizer_.stddev();
  double acc = 0.0;
  for (size_t f = 0; f < weights_.size(); ++f) {
    acc += weights_[f] * ((x[f] - mean[f]) / stddev[f]);
  }
  return acc + bias_;
}

double LinearSvm::DecisionValue(const std::vector<double>& x) const {
  CheckOrDie(fitted_, "LinearSvm::DecisionValue before Fit");
  CheckOrDie(x.size() == weights_.size(),
             "LinearSvm::DecisionValue width mismatch");
  return DecisionValueRow(x.data());
}

void LinearSvm::PredictBatch(const FeatureMatrixView& x,
                             std::vector<double>* out_probs) const {
  CheckOrDie(fitted_, "LinearSvm::PredictBatch before Fit");
  CheckOrDie(x.cols() == static_cast<int>(weights_.size()),
             "LinearSvm::PredictBatch width mismatch");
  out_probs->resize(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    const double f = DecisionValueRow(x.Row(i));
    (*out_probs)[i] = Sigmoid(-(platt_a_ * f + platt_b_));
  }
}

std::unique_ptr<Classifier> LinearSvm::CloneUntrained() const {
  return std::make_unique<LinearSvm>(config_);
}

void LinearSvm::Save(ArchiveWriter* ar) const {
  ar->WriteU32(kSvmSchemaVersion);
  SaveLinearSvmConfig(config_, ar);
  ar->WriteBool(fitted_);
  if (!fitted_) return;
  standardizer_.Save(ar);
  ar->WriteDoubleVector(weights_);
  ar->WriteDouble(bias_);
  ar->WriteDouble(platt_a_);
  ar->WriteDouble(platt_b_);
}

StatusOr<std::unique_ptr<Classifier>> LinearSvm::Load(ArchiveReader* ar) {
  uint32_t version = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU32(&version));
  if (version != kSvmSchemaVersion) {
    return Status::InvalidArgument("LinearSvm: unsupported schema version " +
                                   std::to_string(version));
  }
  PAWS_ASSIGN_OR_RETURN(const LinearSvmConfig config, LoadLinearSvmConfig(ar));
  auto svm = std::make_unique<LinearSvm>(config);
  PAWS_RETURN_IF_ERROR(ar->ReadBool(&svm->fitted_));
  if (!svm->fitted_) return std::unique_ptr<Classifier>(std::move(svm));
  PAWS_ASSIGN_OR_RETURN(svm->standardizer_, Standardizer::Load(ar));
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&svm->weights_));
  PAWS_RETURN_IF_ERROR(ar->ReadDouble(&svm->bias_));
  PAWS_RETURN_IF_ERROR(ar->ReadDouble(&svm->platt_a_));
  PAWS_RETURN_IF_ERROR(ar->ReadDouble(&svm->platt_b_));
  if (svm->weights_.size() !=
      static_cast<size_t>(svm->standardizer_.num_features())) {
    return Status::InvalidArgument("LinearSvm: weight width mismatch");
  }
  return std::unique_ptr<Classifier>(std::move(svm));
}

}  // namespace paws
