#include "ml/dataset_io.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/csv.h"

namespace paws {

namespace {

constexpr uint32_t kDatasetSchemaVersion = 1;
constexpr uint32_t kDatasetSectionTag = FourCc("DSET");

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      out.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  out.push_back(field);
  return out;
}

StatusOr<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("dataset csv: bad number '" + s + "'");
  }
  return v;
}

}  // namespace

std::string DatasetToCsv(const Dataset& data) {
  std::string out = "label,effort,time_step,cell_id";
  for (int f = 0; f < data.num_features(); ++f) {
    out += ",f" + std::to_string(f);
  }
  out += '\n';
  for (int i = 0; i < data.size(); ++i) {
    out += std::to_string(data.label(i));
    out += ',';
    out += FormatDouble(data.effort(i), 17);
    out += ',';
    out += std::to_string(data.time_step(i));
    out += ',';
    out += std::to_string(data.cell_id(i));
    const double* row = data.Row(i);
    for (int f = 0; f < data.num_features(); ++f) {
      out += ',';
      out += FormatDouble(row[f], 17);
    }
    out += '\n';
  }
  return out;
}

Status WriteDatasetCsv(const Dataset& data, const std::string& path) {
  return WriteStringToFile(DatasetToCsv(data), path);
}

StatusOr<Dataset> DatasetFromCsv(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("dataset csv: empty input");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 5 || header[0] != "label" || header[1] != "effort" ||
      header[2] != "time_step" || header[3] != "cell_id") {
    return Status::InvalidArgument(
        "dataset csv: header must start with label,effort,time_step,cell_id "
        "and contain at least one feature column");
  }
  const int k = static_cast<int>(header.size()) - 4;
  Dataset data(k);
  std::vector<double> x(k);
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "dataset csv: row " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    PAWS_ASSIGN_OR_RETURN(const double label, ParseDouble(fields[0]));
    if (label != 0.0 && label != 1.0) {
      return Status::InvalidArgument("dataset csv: non-binary label at row " +
                                     std::to_string(line_no));
    }
    PAWS_ASSIGN_OR_RETURN(const double effort, ParseDouble(fields[1]));
    if (effort < 0.0) {
      return Status::InvalidArgument("dataset csv: negative effort at row " +
                                     std::to_string(line_no));
    }
    PAWS_ASSIGN_OR_RETURN(const double t, ParseDouble(fields[2]));
    PAWS_ASSIGN_OR_RETURN(const double cell, ParseDouble(fields[3]));
    for (int f = 0; f < k; ++f) {
      PAWS_ASSIGN_OR_RETURN(x[f], ParseDouble(fields[4 + f]));
    }
    data.AddRow(x, static_cast<int>(label), effort, static_cast<int>(t),
                static_cast<int>(cell));
  }
  return data;
}

StatusOr<Dataset> ReadDatasetCsv(const std::string& path) {
  PAWS_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  return DatasetFromCsv(text);
}

void SaveDataset(const Dataset& data, ArchiveWriter* ar) {
  const int n = data.size();
  const int k = data.num_features();
  ar->BeginSection(kDatasetSectionTag);
  ar->WriteU32(kDatasetSchemaVersion);
  ar->WriteI32(k);
  ar->WriteU64(n);
  ar->WriteIntVector(data.labels());
  ar->WriteDoubleVector(data.efforts());
  std::vector<int> steps(n), cells(n);
  for (int i = 0; i < n; ++i) {
    steps[i] = data.time_step(i);
    cells[i] = data.cell_id(i);
  }
  ar->WriteIntVector(steps);
  ar->WriteIntVector(cells);
  std::vector<double> features;
  features.reserve(static_cast<size_t>(n) * k);
  for (int i = 0; i < n; ++i) {
    const double* row = data.Row(i);
    features.insert(features.end(), row, row + k);
  }
  ar->WriteDoubleVector(features);
  ar->EndSection();
}

StatusOr<Dataset> LoadDataset(ArchiveReader* ar) {
  PAWS_RETURN_IF_ERROR(ar->EnterSection(kDatasetSectionTag));
  uint32_t version = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU32(&version));
  if (version != kDatasetSchemaVersion) {
    return Status::InvalidArgument("dataset: unsupported schema version " +
                                   std::to_string(version));
  }
  int k = 0;
  uint64_t n = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&k));
  PAWS_RETURN_IF_ERROR(ar->ReadU64(&n));
  std::vector<int> labels, steps, cells;
  std::vector<double> efforts, features;
  PAWS_RETURN_IF_ERROR(ar->ReadIntVector(&labels));
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&efforts));
  PAWS_RETURN_IF_ERROR(ar->ReadIntVector(&steps));
  PAWS_RETURN_IF_ERROR(ar->ReadIntVector(&cells));
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&features));
  PAWS_RETURN_IF_ERROR(ar->LeaveSection());
  if (k <= 0 || labels.size() != n || efforts.size() != n ||
      steps.size() != n || cells.size() != n ||
      features.size() != n * static_cast<uint64_t>(k)) {
    return Status::InvalidArgument("dataset: column size mismatch");
  }
  Dataset data(k);
  std::vector<double> x(k);
  for (uint64_t i = 0; i < n; ++i) {
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::InvalidArgument("dataset: non-binary label at row " +
                                     std::to_string(i));
    }
    if (!(efforts[i] >= 0.0)) {
      return Status::InvalidArgument("dataset: negative effort at row " +
                                     std::to_string(i));
    }
    std::copy(features.begin() + i * k, features.begin() + (i + 1) * k,
              x.begin());
    data.AddRow(x, labels[i], efforts[i], steps[i], cells[i]);
  }
  return data;
}

Status WriteDatasetBinary(const Dataset& data, const std::string& path) {
  ArchiveWriter writer;
  SaveDataset(data, &writer);
  return writer.WriteFile(path);
}

StatusOr<Dataset> ReadDatasetBinary(const std::string& path) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader, ArchiveReader::FromFile(path));
  PAWS_ASSIGN_OR_RETURN(Dataset data, LoadDataset(&reader));
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return data;
}

}  // namespace paws
