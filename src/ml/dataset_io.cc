#include "ml/dataset_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/csv.h"

namespace paws {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      out.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  out.push_back(field);
  return out;
}

StatusOr<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("dataset csv: bad number '" + s + "'");
  }
  return v;
}

}  // namespace

std::string DatasetToCsv(const Dataset& data) {
  std::string out = "label,effort,time_step,cell_id";
  for (int f = 0; f < data.num_features(); ++f) {
    out += ",f" + std::to_string(f);
  }
  out += '\n';
  for (int i = 0; i < data.size(); ++i) {
    out += std::to_string(data.label(i));
    out += ',';
    out += FormatDouble(data.effort(i), 17);
    out += ',';
    out += std::to_string(data.time_step(i));
    out += ',';
    out += std::to_string(data.cell_id(i));
    const double* row = data.Row(i);
    for (int f = 0; f < data.num_features(); ++f) {
      out += ',';
      out += FormatDouble(row[f], 17);
    }
    out += '\n';
  }
  return out;
}

Status WriteDatasetCsv(const Dataset& data, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::Internal("cannot open for writing: " + path);
  f << DatasetToCsv(data);
  if (!f) return Status::Internal("failed writing: " + path);
  return Status::OK();
}

StatusOr<Dataset> DatasetFromCsv(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("dataset csv: empty input");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 5 || header[0] != "label" || header[1] != "effort" ||
      header[2] != "time_step" || header[3] != "cell_id") {
    return Status::InvalidArgument(
        "dataset csv: header must start with label,effort,time_step,cell_id "
        "and contain at least one feature column");
  }
  const int k = static_cast<int>(header.size()) - 4;
  Dataset data(k);
  std::vector<double> x(k);
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "dataset csv: row " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    PAWS_ASSIGN_OR_RETURN(const double label, ParseDouble(fields[0]));
    if (label != 0.0 && label != 1.0) {
      return Status::InvalidArgument("dataset csv: non-binary label at row " +
                                     std::to_string(line_no));
    }
    PAWS_ASSIGN_OR_RETURN(const double effort, ParseDouble(fields[1]));
    if (effort < 0.0) {
      return Status::InvalidArgument("dataset csv: negative effort at row " +
                                     std::to_string(line_no));
    }
    PAWS_ASSIGN_OR_RETURN(const double t, ParseDouble(fields[2]));
    PAWS_ASSIGN_OR_RETURN(const double cell, ParseDouble(fields[3]));
    for (int f = 0; f < k; ++f) {
      PAWS_ASSIGN_OR_RETURN(x[f], ParseDouble(fields[4 + f]));
    }
    data.AddRow(x, static_cast<int>(label), effort, static_cast<int>(t),
                static_cast<int>(cell));
  }
  return data;
}

StatusOr<Dataset> ReadDatasetCsv(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return DatasetFromCsv(buffer.str());
}

}  // namespace paws
