#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/classifier.h"

namespace paws {

std::vector<double> PredictAll(const Classifier& model, const Dataset& data) {
  std::vector<double> out;
  model.PredictBatch(data.FeaturesView(), &out);
  return out;
}

StatusOr<double> AucRoc(const std::vector<double>& scores,
                        const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("AucRoc: size mismatch");
  }
  const int n = static_cast<int>(scores.size());
  int n_pos = 0;
  for (int y : labels) n_pos += y;
  const int n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) {
    return Status::InvalidArgument(
        "AucRoc requires both positive and negative labels");
  }
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] < scores[b]; });
  // Average ranks over tie groups.
  std::vector<double> rank(n);
  int i = 0;
  while (i < n) {
    int j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * (i + j) + 1.0;  // 1-based
    for (int k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  for (int k = 0; k < n; ++k) {
    if (labels[k] == 1) pos_rank_sum += rank[k];
  }
  const double auc =
      (pos_rank_sum - 0.5 * n_pos * (n_pos + 1)) /
      (static_cast<double>(n_pos) * static_cast<double>(n_neg));
  return auc;
}

double LogLoss(const std::vector<double>& probs, const std::vector<int>& labels,
               double eps) {
  CheckOrDie(probs.size() == labels.size(), "LogLoss: size mismatch");
  CheckOrDie(!probs.empty(), "LogLoss: empty input");
  double total = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double p = std::clamp(probs[i], eps, 1.0 - eps);
    total += labels[i] == 1 ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / probs.size();
}

double BrierScore(const std::vector<double>& probs,
                  const std::vector<int>& labels) {
  CheckOrDie(probs.size() == labels.size(), "BrierScore: size mismatch");
  CheckOrDie(!probs.empty(), "BrierScore: empty input");
  double total = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double d = probs[i] - labels[i];
    total += d * d;
  }
  return total / probs.size();
}

double Accuracy(const std::vector<double>& probs, const std::vector<int>& labels,
                double threshold) {
  CheckOrDie(probs.size() == labels.size(), "Accuracy: size mismatch");
  CheckOrDie(!probs.empty(), "Accuracy: empty input");
  int correct = 0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const int pred = probs[i] >= threshold ? 1 : 0;
    if (pred == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / probs.size();
}

PrecisionRecall PrecisionRecallAt(const std::vector<double>& probs,
                                  const std::vector<int>& labels,
                                  double threshold) {
  CheckOrDie(probs.size() == labels.size(), "PrecisionRecall: size mismatch");
  int tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const int pred = probs[i] >= threshold ? 1 : 0;
    if (pred == 1 && labels[i] == 1) ++tp;
    if (pred == 1 && labels[i] == 0) ++fp;
    if (pred == 0 && labels[i] == 1) ++fn;
  }
  PrecisionRecall pr;
  if (tp + fp > 0) pr.precision = static_cast<double>(tp) / (tp + fp);
  if (tp + fn > 0) pr.recall = static_cast<double>(tp) / (tp + fn);
  return pr;
}

}  // namespace paws
