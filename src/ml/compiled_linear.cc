#include "ml/compiled_linear.h"

#include <algorithm>

#include "ml/bagging.h"
#include "ml/linear_svm.h"
#include "util/special.h"

namespace paws {

std::unique_ptr<CompiledLinearEnsemble> CompiledLinearEnsemble::Compile(
    const std::vector<std::unique_ptr<Classifier>>& learners,
    const std::vector<double>& thresholds,
    const std::vector<double>& weights) {
  if (!ValidEnsembleShape(learners, thresholds, weights)) return nullptr;
  std::unique_ptr<CompiledLinearEnsemble> flat(new CompiledLinearEnsemble());
  flat->thresholds_ = thresholds;
  flat->weights_ = weights;
  flat->learner_member_begin_.push_back(0);
  for (const auto& learner : learners) {
    const auto* bag = dynamic_cast<const BaggingClassifier*>(learner.get());
    if (bag == nullptr || bag->num_fitted() == 0) return nullptr;
    for (int b = 0; b < bag->num_fitted(); ++b) {
      const auto* svm = dynamic_cast<const LinearSvm*>(&bag->member(b));
      if (svm == nullptr || !svm->fitted()) return nullptr;
      const int k = static_cast<int>(svm->weights().size());
      if (flat->num_features_ == 0) flat->num_features_ = k;
      // One shared width: the flat matrix has rectangular member rows.
      if (k == 0 || k != flat->num_features_) return nullptr;
      const auto& st = svm->standardizer();
      flat->weight_rows_.insert(flat->weight_rows_.end(),
                                svm->weights().begin(), svm->weights().end());
      flat->mean_rows_.insert(flat->mean_rows_.end(), st.mean().begin(),
                              st.mean().end());
      flat->stddev_rows_.insert(flat->stddev_rows_.end(), st.stddev().begin(),
                                st.stddev().end());
      flat->bias_.push_back(svm->bias());
      flat->platt_a_.push_back(svm->platt_a());
      flat->platt_b_.push_back(svm->platt_b());
    }
    flat->learner_member_begin_.push_back(
        static_cast<int32_t>(flat->bias_.size()));
  }
  return flat;
}

void CompiledLinearEnsemble::ScoreLearner(int learner, const double* rows,
                                          int stride, const int* idx,
                                          int count, double* sum,
                                          double* sum2, double* mean,
                                          double* variance) const {
  const int k = num_features_;
  const int member_begin = learner_member_begin_[learner];
  const int member_end = learner_member_begin_[learner + 1];
  for (int member = member_begin; member < member_end; ++member) {
    // GEMV sweep: this member's parameter rows stay hot while it scores
    // the whole selected block. Standardization is fused into the dot
    // product exactly as LinearSvm::DecisionValueRow performs it —
    // accumulate w * ((x - mean) / stddev) in feature order, bias last —
    // so the decision value matches the reference bit for bit.
    const double* w = weight_rows_.data() + static_cast<size_t>(member) * k;
    const double* mu = mean_rows_.data() + static_cast<size_t>(member) * k;
    const double* sd = stddev_rows_.data() + static_cast<size_t>(member) * k;
    const double bias = bias_[member];
    const double a = platt_a_[member];
    const double b = platt_b_[member];
    // The first member assigns, so callers never pre-zero the
    // accumulators. Starting at the first member's value instead of 0.0
    // is bit-identical: 0.0 + v == v for every probability (v >= 0), and
    // the member variance is exactly 0 (LinearSvm reports none), so the
    // reference's `p.variance + p.prob * p.prob` term is `p * p`.
    if (member == member_begin) {
      for (int i = 0; i < count; ++i) {
        const double* row = rows + static_cast<size_t>(idx[i]) * stride;
        double acc = 0.0;
        for (int f = 0; f < k; ++f) acc += w[f] * ((row[f] - mu[f]) / sd[f]);
        const double p = Sigmoid(-(a * (acc + bias) + b));
        sum[i] = p;
        sum2[i] = p * p;
      }
    } else {
      for (int i = 0; i < count; ++i) {
        const double* row = rows + static_cast<size_t>(idx[i]) * stride;
        double acc = 0.0;
        for (int f = 0; f < k; ++f) acc += w[f] * ((row[f] - mu[f]) / sd[f]);
        const double p = Sigmoid(-(a * (acc + bias) + b));
        sum[i] += p;
        sum2[i] += p * p;
      }
    }
  }
  const int b_count = member_end - member_begin;
  for (int i = 0; i < count; ++i) {
    const double m = sum[i] / b_count;
    const double s = sum2[i] / b_count;
    mean[i] = m;
    variance[i] = std::max(0.0, s - m * m);
  }
}

}  // namespace paws
