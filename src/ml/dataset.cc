#include "ml/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace paws {

void Dataset::AddRow(const std::vector<double>& x, int y, double effort,
                     int time_step, int cell_id) {
  CheckOrDie(static_cast<int>(x.size()) == num_features_,
             "Dataset::AddRow feature width mismatch");
  CheckOrDie(y == 0 || y == 1, "Dataset labels must be binary");
  CheckOrDie(effort >= 0.0, "Dataset effort must be non-negative");
  x_.insert(x_.end(), x.begin(), x.end());
  y_.push_back(y);
  effort_.push_back(effort);
  time_step_.push_back(time_step);
  cell_id_.push_back(cell_id);
}

const double* Dataset::Row(int i) const {
  CheckOrDie(i >= 0 && i < size(), "Dataset::Row out of bounds");
  return x_.data() + static_cast<size_t>(i) * num_features_;
}

std::vector<double> Dataset::RowVector(int i) const {
  const double* r = Row(i);
  return std::vector<double>(r, r + num_features_);
}

int Dataset::CountPositives() const {
  int n = 0;
  for (int y : y_) n += y;
  return n;
}

double Dataset::PositiveFraction() const {
  if (empty()) return 0.0;
  return static_cast<double>(CountPositives()) / size();
}

Dataset Dataset::Subset(const std::vector<int>& indices) const {
  Dataset out(num_features_);
  for (int i : indices) {
    CheckOrDie(i >= 0 && i < size(), "Dataset::Subset index out of bounds");
    out.AddRow(RowVector(i), y_[i], effort_[i], time_step_[i], cell_id_[i]);
  }
  return out;
}

Dataset Dataset::FilterNegativesBelowEffort(double theta) const {
  std::vector<int> keep;
  for (int i = 0; i < size(); ++i) {
    if (y_[i] == 1 || effort_[i] > theta) keep.push_back(i);
  }
  return Subset(keep);
}

std::vector<int> Dataset::RowsInTimeRange(int t_begin, int t_end) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (time_step_[i] >= t_begin && time_step_[i] < t_end) out.push_back(i);
  }
  return out;
}

double Dataset::EffortPercentile(double q) const {
  CheckOrDie(!empty(), "EffortPercentile on empty dataset");
  return Percentile(effort_, q);
}

Standardizer Standardizer::Fit(const Dataset& data) {
  CheckOrDie(!data.empty(), "Standardizer::Fit on empty dataset");
  const int k = data.num_features();
  const int n = data.size();
  Standardizer s;
  s.mean_.assign(k, 0.0);
  s.stddev_.assign(k, 0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = data.Row(i);
    for (int f = 0; f < k; ++f) s.mean_[f] += row[f];
  }
  for (int f = 0; f < k; ++f) s.mean_[f] /= n;
  for (int i = 0; i < n; ++i) {
    const double* row = data.Row(i);
    for (int f = 0; f < k; ++f) {
      const double d = row[f] - s.mean_[f];
      s.stddev_[f] += d * d;
    }
  }
  for (int f = 0; f < k; ++f) {
    s.stddev_[f] = std::sqrt(s.stddev_[f] / std::max(1, n - 1));
    if (s.stddev_[f] < 1e-12) s.stddev_[f] = 1.0;  // constant feature -> 0
  }
  return s;
}

void Standardizer::Apply(std::vector<double>* x) const {
  CheckOrDie(x != nullptr && x->size() == mean_.size(),
             "Standardizer::Apply width mismatch");
  for (size_t f = 0; f < mean_.size(); ++f) {
    (*x)[f] = ((*x)[f] - mean_[f]) / stddev_[f];
  }
}

std::vector<double> Standardizer::Transform(
    const std::vector<double>& x) const {
  std::vector<double> out = x;
  Apply(&out);
  return out;
}

void Standardizer::Save(ArchiveWriter* ar) const {
  ar->WriteDoubleVector(mean_);
  ar->WriteDoubleVector(stddev_);
}

StatusOr<Standardizer> Standardizer::Load(ArchiveReader* ar) {
  Standardizer s;
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&s.mean_));
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&s.stddev_));
  if (s.mean_.size() != s.stddev_.size()) {
    return Status::InvalidArgument("Standardizer: mean/stddev width mismatch");
  }
  for (double sd : s.stddev_) {
    if (!(sd > 0.0)) {
      return Status::InvalidArgument("Standardizer: non-positive stddev");
    }
  }
  return s;
}

}  // namespace paws
