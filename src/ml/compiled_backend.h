#ifndef PAWS_ML_COMPILED_BACKEND_H_
#define PAWS_ML_COMPILED_BACKEND_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ml/scoring_backend.h"

namespace paws {
namespace internal {

// Row-block sizes for the blocked compiled traversals: a block's feature
// rows stay resident while every learner sweeps over it, and one learner's
// flattened parameters stay hot across the whole block. Matches the
// reference path's parallel grains so thread-count sweeps compare like
// with like.
constexpr int kCompiledRowBlock = 256;
constexpr int kCompiledCurveRowBlock = 256;
static_assert(kCompiledCurveRowBlock <= kCompiledRowBlock,
              "scratch is sized by kCompiledRowBlock");

// Fixed-size per-chunk scratch: ParallelFor chunks are capped at
// kCompiledRowBlock rows, so every per-row intermediate lives on the
// worker's stack and the serving paths allocate nothing per call beyond
// their output buffers.
struct ChunkScratch {
  int idx[kCompiledRowBlock];
  int q[kCompiledRowBlock];
  double sum[kCompiledRowBlock];
  double sum2[kCompiledRowBlock];
  double lmean[kCompiledRowBlock];
  double lvar[kCompiledRowBlock];
  double wsum[kCompiledRowBlock];
  double mean[kCompiledRowBlock];
  double second[kCompiledRowBlock];
};

// Runs `fn(lo, cn)` over [0, n) in chunks of at most `block` rows. The
// parallel grain is `block`, but a serial ParallelFor hands the whole
// range to one call, so the body re-blocks itself — every chunk reaching
// `fn` fits the fixed ChunkScratch capacity.
template <typename Fn>
void ForEachBlock(const ParallelismConfig& parallelism, int n, int block,
                  const Fn& fn) {
  ParallelFor(parallelism, 0, n, block,
              [&](std::int64_t lo64, std::int64_t hi64) {
                for (std::int64_t b = lo64; b < hi64; b += block) {
                  fn(static_cast<int>(b),
                     static_cast<int>(
                         std::min<std::int64_t>(block, hi64 - b)));
                }
              });
}

/// Shared serving harness of the compiled backends. A derived backend owns
/// a flattened copy of its learner parameters and supplies
///
///   void ScoreLearner(int learner, const double* rows, int stride,
///                     const int* idx, int count, double* sum, double* sum2,
///                     double* mean, double* variance) const;
///   void CheckRowWidth(int cols) const;
///
/// ScoreLearner scores one threshold learner over the `count` rows selected
/// by `idx` (indices into the row-major block at `rows` with stride
/// `stride`): per selected row the member-order accumulation into
/// `sum`/`sum2` (no pre-zeroing required — the first member assigns), then
/// the bagging mean and clamped ensemble-spread variance into
/// `mean`/`variance` — exactly BaggingClassifier::PredictBatchWithVariance.
///
/// The base implements the three ScoringBackend calls on top of it: the
/// qualified set at any effort is a prefix of the (strictly ascending)
/// threshold-sorted learner list, so shared-effort batches mix a fixed
/// prefix, per-row-effort batches compact each learner's qualifying rows,
/// and effort-curve tables score each learner once and extend a running
/// weight prefix scan along the grid — all bit-identical to the reference
/// accumulation order.
template <typename Derived>
class CompiledBackendBase : public ScoringBackend {
 public:
  int num_learners() const { return static_cast<int>(thresholds_.size()); }
  /// Widest feature index the compiled parameters read, plus one — the
  /// minimum row width accepted by the predict calls.
  int num_features() const { return num_features_; }

  void PredictBatch(const WeakLearnerSetView& /*ensemble*/,
                    const FeatureMatrixView& x, double effort,
                    const ParallelismConfig& parallelism,
                    std::vector<Prediction>* out) const override {
    const int n = x.rows();
    out->resize(n);
    if (n == 0) return;
    derived().CheckRowWidth(x.cols());
    const int q = NumQualified(effort);
    auto run_block = [&](int lo, int cn) {
      const double* rows = x.Row(lo);
      ChunkScratch s;
      for (int r = 0; r < cn; ++r) s.idx[r] = r;
      std::fill(s.mean, s.mean + cn, 0.0);
      std::fill(s.second, s.second + cn, 0.0);
      double wsum = 0.0;
      for (int i = 0; i < q; ++i) {
        derived().ScoreLearner(i, rows, x.cols(), s.idx, cn, s.sum, s.sum2,
                               s.lmean, s.lvar);
        const double w = weights_[i];
        wsum += w;
        for (int r = 0; r < cn; ++r) {
          s.mean[r] += w * s.lmean[r];
          s.second[r] += w * (s.lvar[r] + s.lmean[r] * s.lmean[r]);
        }
      }
      if (wsum <= 0.0) {
        // Effort below every threshold (or zero qualified weight): the
        // loosest learner's raw prediction, as the reference path does.
        derived().ScoreLearner(0, rows, x.cols(), s.idx, cn, s.sum, s.sum2,
                               s.lmean, s.lvar);
        for (int r = 0; r < cn; ++r) {
          (*out)[lo + r] = Prediction{s.lmean[r], s.lvar[r]};
        }
        return;
      }
      for (int r = 0; r < cn; ++r) {
        const double m = s.mean[r] / wsum;
        const double sec = s.second[r] / wsum;
        (*out)[lo + r] = Prediction{m, std::max(0.0, sec - m * m)};
      }
    };
    ForEachBlock(parallelism, n, kCompiledRowBlock, run_block);
  }

  void PredictBatch(const WeakLearnerSetView& /*ensemble*/,
                    const FeatureMatrixView& x,
                    const std::vector<double>& efforts,
                    const ParallelismConfig& parallelism,
                    std::vector<Prediction>* out) const override {
    const int n = x.rows();
    CheckOrDie(static_cast<int>(efforts.size()) == n,
               "CompiledBackend: one effort per row required");
    out->resize(n);
    if (n == 0) return;
    derived().CheckRowWidth(x.cols());
    auto run_block = [&](int lo, int cn) {
      const double* rows = x.Row(lo);
      // Per-row qualified prefix length; learner i scores exactly the
      // rows with q[r] > i, compacted into `idx`, so accumulation per
      // row still runs in learner order — the reference's
      // gather-per-learner pass without copying any feature rows.
      ChunkScratch s;
      int max_q = 0;
      for (int r = 0; r < cn; ++r) {
        s.q[r] = NumQualified(efforts[lo + r]);
        max_q = std::max(max_q, s.q[r]);
      }
      std::fill(s.wsum, s.wsum + cn, 0.0);
      std::fill(s.mean, s.mean + cn, 0.0);
      std::fill(s.second, s.second + cn, 0.0);
      for (int i = 0; i < max_q; ++i) {
        int count = 0;
        for (int r = 0; r < cn; ++r) {
          if (s.q[r] > i) s.idx[count++] = r;
        }
        if (count == 0) continue;
        derived().ScoreLearner(i, rows, x.cols(), s.idx, count, s.sum, s.sum2,
                               s.lmean, s.lvar);
        const double w = weights_[i];
        for (int j = 0; j < count; ++j) {
          const int r = s.idx[j];
          s.wsum[r] += w;
          s.mean[r] += w * s.lmean[j];
          s.second[r] += w * (s.lvar[j] + s.lmean[j] * s.lmean[j]);
        }
      }
      // Rows whose effort sits below every threshold (or whose
      // qualified weights sum to zero) fall back to the loosest learner.
      int fallback = 0;
      for (int r = 0; r < cn; ++r) {
        if (s.wsum[r] <= 0.0) s.idx[fallback++] = r;
      }
      if (fallback > 0) {
        derived().ScoreLearner(0, rows, x.cols(), s.idx, fallback, s.sum,
                               s.sum2, s.lmean, s.lvar);
        for (int j = 0; j < fallback; ++j) {
          (*out)[lo + s.idx[j]] = Prediction{s.lmean[j], s.lvar[j]};
        }
      }
      for (int r = 0; r < cn; ++r) {
        if (s.wsum[r] <= 0.0) continue;
        const double m = s.mean[r] / s.wsum[r];
        const double sec = s.second[r] / s.wsum[r];
        (*out)[lo + r] = Prediction{m, std::max(0.0, sec - m * m)};
      }
    };
    ForEachBlock(parallelism, n, kCompiledRowBlock, run_block);
  }

  void FillEffortCurves(const WeakLearnerSetView& /*ensemble*/,
                        const FeatureMatrixView& x,
                        const std::vector<double>& effort_grid,
                        const ParallelismConfig& parallelism,
                        EffortCurveTable* table) const override {
    const int n = x.rows();
    const int m = static_cast<int>(effort_grid.size());
    table->num_cells = n;
    table->prob.assign(static_cast<size_t>(n) * m, 0.0);
    table->variance.assign(static_cast<size_t>(n) * m, 0.0);
    if (n == 0) return;
    derived().CheckRowWidth(x.cols());
    // Score once: learners beyond the grid's top can never qualify;
    // learner 0 always runs because it serves the below-every-threshold
    // fallback.
    const int q_max = NumQualified(effort_grid.back());
    const int num_scored = std::max(1, q_max);
    auto run_block = [&](int lo, int cn) {
      const double* rows = x.Row(lo);
      ChunkScratch s;
      for (int r = 0; r < cn; ++r) s.idx[r] = r;
      // Learner scores, [learner * cn + row]. The one heap buffer on
      // this path: its height is the learner count, which ChunkScratch
      // cannot bound.
      std::vector<double> lmean(static_cast<size_t>(num_scored) * cn);
      std::vector<double> lvar(static_cast<size_t>(num_scored) * cn);
      for (int i = 0; i < num_scored; ++i) {
        derived().ScoreLearner(i, rows, x.cols(), s.idx, cn, s.sum, s.sum2,
                               lmean.data() + static_cast<size_t>(i) * cn,
                               lvar.data() + static_cast<size_t>(i) * cn);
      }
      // Weight prefix scan along the grid, one row at a time: extending
      // the running mixture with learner qi replays the reference's
      // from-zero accumulation (same terms, same order), so every grid
      // point is bit-identical while the per-point cost drops from O(K)
      // to amortized O(1). Row-major emission keeps the accumulators in
      // registers and the table writes sequential.
      const double* thresholds = thresholds_.data();
      const double* weights = weights_.data();
      for (int r = 0; r < cn; ++r) {
        double* prob_row =
            table->prob.data() + static_cast<size_t>(lo + r) * m;
        double* var_row =
            table->variance.data() + static_cast<size_t>(lo + r) * m;
        double wsum = 0.0, mean = 0.0, second = 0.0;
        int qi = 0;
        for (int k = 0; k < m; ++k) {
          while (qi < q_max && thresholds[qi] <= effort_grid[k]) {
            const double w = weights[qi];
            const double lm = lmean[static_cast<size_t>(qi) * cn + r];
            const double lv = lvar[static_cast<size_t>(qi) * cn + r];
            wsum += w;
            mean += w * lm;
            second += w * (lv + lm * lm);
            ++qi;
          }
          if (wsum <= 0.0) {
            prob_row[k] = lmean[r];
            var_row[k] = lvar[r];
          } else {
            const double mu = mean / wsum;
            const double sec = second / wsum;
            prob_row[k] = mu;
            var_row[k] = std::max(0.0, sec - mu * mu);
          }
        }
      }
    };
    ForEachBlock(parallelism, n, kCompiledCurveRowBlock, run_block);
  }

 protected:
  int NumQualified(double effort) const {
    // thresholds_ is ascending, so the qualified set is the prefix below
    // the first threshold exceeding `effort`.
    return static_cast<int>(std::upper_bound(thresholds_.begin(),
                                             thresholds_.end(), effort) -
                            thresholds_.begin());
  }

  /// True when the learner/threshold/weight triple satisfies the compiled
  /// preconditions (non-empty, parallel, strictly ascending thresholds —
  /// the prefix-scan invariant).
  static bool ValidEnsembleShape(
      const std::vector<std::unique_ptr<Classifier>>& learners,
      const std::vector<double>& thresholds,
      const std::vector<double>& weights) {
    if (learners.empty() || learners.size() != thresholds.size() ||
        learners.size() != weights.size()) {
      return false;
    }
    for (size_t i = 1; i < thresholds.size(); ++i) {
      if (!(thresholds[i] > thresholds[i - 1])) return false;
    }
    return true;
  }

  std::vector<double> thresholds_;  // ascending effort thresholds
  std::vector<double> weights_;     // mixing weights
  int num_features_ = 0;

 private:
  const Derived& derived() const {
    return *static_cast<const Derived*>(this);
  }
};

}  // namespace internal
}  // namespace paws

#endif  // PAWS_ML_COMPILED_BACKEND_H_
