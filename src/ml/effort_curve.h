#ifndef PAWS_ML_EFFORT_CURVE_H_
#define PAWS_ML_EFFORT_CURVE_H_

#include <vector>

#include "util/archive.h"
#include "util/status.h"

namespace paws {

/// Tabulated prediction curves over hypothetical patrol effort: for each of
/// `num_cells` feature rows, the ensemble's detection probability g_v(c)
/// and predictive variance nu_v(c) sampled at every point of a shared,
/// strictly increasing `effort_grid`. This replaces the per-cell
/// std::function closure pair that used to feed the planner: one batched
/// tabulation evaluates every qualified weak learner once per cell and the
/// whole effort grid reuses those evaluations, so the planner's PWL
/// construction and the risk-map renderers consume plain arrays instead of
/// heap-allocated closures.
struct EffortCurveTable {
  std::vector<double> effort_grid;  // m points, strictly increasing
  /// Number of qualified weak learners at each grid point (non-decreasing
  /// along the grid; empty for resampled tables).
  std::vector<int> qualified_count;
  int num_cells = 0;
  std::vector<double> prob;      // row-major [cell * m + k]
  std::vector<double> variance;  // row-major [cell * m + k]

  int num_points() const { return static_cast<int>(effort_grid.size()); }

  double ProbAt(int cell, int k) const {
    return prob[Index(cell, k)];
  }
  double VarianceAt(int cell, int k) const {
    return variance[Index(cell, k)];
  }

  /// g_v(effort) by linear interpolation along the grid, clamped outside it.
  double EvalProb(int cell, double effort) const;
  /// nu_v(effort) by linear interpolation along the grid, clamped outside.
  double EvalVariance(int cell, double effort) const;
  /// Both curves at once with a single grid search — bit-identical to
  /// EvalProb + EvalVariance; the tabulated RobustObjective hot loop uses
  /// this so it doesn't pay two binary searches per cell.
  void Eval(int cell, double effort, double* prob_out,
            double* variance_out) const;

 private:
  size_t Index(int cell, int k) const {
    CheckOrDie(cell >= 0 && cell < num_cells &&
                   k >= 0 && k < num_points(),
               "EffortCurveTable: index out of bounds");
    return static_cast<size_t>(cell) * effort_grid.size() + k;
  }
};

/// `segments` + 1 equally spaced grid points on [lo, hi] — the same
/// breakpoint layout PiecewiseLinear::FromFunction uses, so tables built on
/// this grid reproduce the closure-sampled PWLs bit for bit.
std::vector<double> UniformEffortGrid(double lo, double hi, int segments);

/// Resamples a table onto a new effort grid by linear interpolation — one
/// expensive model tabulation can feed several PWL resolutions. The
/// resampled table has no qualified_count (it no longer aligns with learner
/// thresholds).
EffortCurveTable ResampleEffortCurves(const EffortCurveTable& in,
                                      std::vector<double> new_grid);

/// Bit-exact table serialization — lets a snapshot ship pre-tabulated
/// planner inputs alongside (or instead of) the model that produced them.
void SaveEffortCurveTable(const EffortCurveTable& table, ArchiveWriter* ar);
StatusOr<EffortCurveTable> LoadEffortCurveTable(ArchiveReader* ar);

}  // namespace paws

#endif  // PAWS_ML_EFFORT_CURVE_H_
