#include "ml/bagging.h"

#include <algorithm>
#include <cmath>

namespace paws {

namespace {

constexpr uint32_t kBaggingSchemaVersion = 1;

}  // namespace

void SaveBaggingConfig(const BaggingConfig& config, ArchiveWriter* ar) {
  ar->WriteI32(config.num_estimators);
  ar->WriteBool(config.balanced);
  ar->WriteDouble(config.subsample);
  ar->WriteBool(config.track_bootstrap_counts);
}

StatusOr<BaggingConfig> LoadBaggingConfig(ArchiveReader* ar) {
  BaggingConfig config;
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&config.num_estimators));
  PAWS_RETURN_IF_ERROR(ar->ReadBool(&config.balanced));
  PAWS_RETURN_IF_ERROR(ar->ReadDouble(&config.subsample));
  PAWS_RETURN_IF_ERROR(ar->ReadBool(&config.track_bootstrap_counts));
  if (config.num_estimators < 1) {
    return Status::InvalidArgument("BaggingConfig: num_estimators < 1");
  }
  return config;
}

std::vector<int> BaggingClassifier::DrawBootstrap(const Dataset& data,
                                                  Rng* rng) const {
  const int n = data.size();
  std::vector<int> rows;
  if (config_.balanced) {
    // Undersample negatives to the positive count; resample positives.
    std::vector<int> pos, neg;
    pos.reserve(n);
    neg.reserve(n);
    for (int i = 0; i < n; ++i) {
      (data.label(i) == 1 ? pos : neg).push_back(i);
    }
    // With no positives (possible in tiny folds) fall back to plain
    // bootstrap so Fit still succeeds.
    if (pos.empty() || neg.empty()) {
      rows.reserve(n);
      for (int i = 0; i < n; ++i) {
        rows.push_back(rng->UniformInt(n));
      }
      return rows;
    }
    const int m = static_cast<int>(pos.size());
    rows.reserve(2 * static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      rows.push_back(pos[rng->UniformInt(m)]);
      rows.push_back(neg[rng->UniformInt(static_cast<int>(neg.size()))]);
    }
    return rows;
  }
  const int draws = std::max(1, static_cast<int>(config_.subsample * n));
  rows.reserve(draws);
  for (int i = 0; i < draws; ++i) rows.push_back(rng->UniformInt(n));
  return rows;
}

Status BaggingClassifier::Fit(const Dataset& data, Rng* rng) {
  if (data.empty()) return Status::InvalidArgument("Bagging: empty data");
  CheckOrDie(rng != nullptr, "BaggingClassifier::Fit requires an Rng");
  members_.clear();
  bootstrap_counts_.clear();
  num_train_rows_ = data.size();
  const int num = config_.num_estimators;
  // Consume the caller's Rng serially: every member gets its bootstrap and
  // a forked generator up front, so fitting below is embarrassingly
  // parallel and bit-identical for any thread count.
  std::vector<std::vector<int>> bootstraps(num);
  std::vector<Rng> member_rngs;
  member_rngs.reserve(num);
  for (int b = 0; b < num; ++b) {
    bootstraps[b] = DrawBootstrap(data, rng);
    member_rngs.push_back(rng->Fork());
    if (config_.track_bootstrap_counts) {
      std::vector<int> counts(num_train_rows_, 0);
      for (int r : bootstraps[b]) ++counts[r];
      bootstrap_counts_.push_back(std::move(counts));
    }
  }
  members_.resize(num);
  std::vector<Status> statuses(num, Status::OK());
  ParallelFor(config_.parallelism, 0, num, /*grain=*/1,
              [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t b = lo; b < hi; ++b) {
                  auto member = base_->CloneUntrained();
                  statuses[b] =
                      member->Fit(data.Subset(bootstraps[b]), &member_rngs[b]);
                  members_[b] = std::move(member);
                }
              });
  const Status st = FirstError(statuses);
  if (!st.ok()) {
    members_.clear();
    bootstrap_counts_.clear();
  }
  return st;
}

void BaggingClassifier::PredictBatch(const FeatureMatrixView& x,
                                     std::vector<double>* out_probs) const {
  CheckOrDie(!members_.empty(), "BaggingClassifier::PredictBatch before Fit");
  const int n = x.rows();
  out_probs->assign(n, 0.0);
  std::vector<double> member_probs;
  for (const auto& m : members_) {
    m->PredictBatch(x, &member_probs);
    for (int r = 0; r < n; ++r) (*out_probs)[r] += member_probs[r];
  }
  for (int r = 0; r < n; ++r) (*out_probs)[r] /= members_.size();
}

void BaggingClassifier::PredictBatchWithVariance(
    const FeatureMatrixView& x, std::vector<Prediction>* out) const {
  CheckOrDie(!members_.empty(), "BaggingClassifier before Fit");
  const int b = static_cast<int>(members_.size());
  const int n = x.rows();
  std::vector<double> mean(n, 0.0);
  std::vector<double> second_moment(n, 0.0);  // E[v_i + m_i^2]
  std::vector<Prediction> member_preds;
  for (const auto& m : members_) {
    m->PredictBatchWithVariance(x, &member_preds);
    for (int r = 0; r < n; ++r) {
      const Prediction& p = member_preds[r];
      mean[r] += p.prob;
      second_moment[r] += p.variance + p.prob * p.prob;
    }
  }
  out->resize(n);
  for (int r = 0; r < n; ++r) {
    const double m = mean[r] / b;
    const double s = second_moment[r] / b;
    (*out)[r] = Prediction{m, std::max(0.0, s - m * m)};
  }
}

std::unique_ptr<Classifier> BaggingClassifier::CloneUntrained() const {
  return std::make_unique<BaggingClassifier>(base_->CloneUntrained(), config_);
}

void BaggingClassifier::Save(ArchiveWriter* ar) const {
  ar->WriteU32(kBaggingSchemaVersion);
  SaveBaggingConfig(config_, ar);
  SaveClassifier(*base_, ar);
  ar->WriteU64(members_.size());
  for (const auto& member : members_) SaveClassifier(*member, ar);
  ar->WriteI32(num_train_rows_);
  ar->WriteU64(bootstrap_counts_.size());
  for (const std::vector<int>& counts : bootstrap_counts_) {
    ar->WriteIntVector(counts);
  }
}

StatusOr<std::unique_ptr<Classifier>> BaggingClassifier::Load(
    ArchiveReader* ar) {
  uint32_t version = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU32(&version));
  if (version != kBaggingSchemaVersion) {
    return Status::InvalidArgument("Bagging: unsupported schema version " +
                                   std::to_string(version));
  }
  PAWS_ASSIGN_OR_RETURN(BaggingConfig config, LoadBaggingConfig(ar));
  PAWS_ASSIGN_OR_RETURN(std::unique_ptr<Classifier> base, LoadClassifier(ar));
  auto bagger =
      std::make_unique<BaggingClassifier>(std::move(base), std::move(config));
  uint64_t num_members = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU64(&num_members));
  if (num_members > ar->remaining()) {
    return Status::InvalidArgument("Bagging: member count overruns archive");
  }
  bagger->members_.reserve(num_members);
  for (uint64_t b = 0; b < num_members; ++b) {
    PAWS_ASSIGN_OR_RETURN(std::unique_ptr<Classifier> member,
                          LoadClassifier(ar));
    bagger->members_.push_back(std::move(member));
  }
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&bagger->num_train_rows_));
  uint64_t num_counts = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU64(&num_counts));
  if (bagger->num_train_rows_ < 0 || num_counts > ar->remaining() / 8 ||
      (num_counts != 0 && num_counts != num_members)) {
    return Status::InvalidArgument("Bagging: malformed bootstrap counts");
  }
  bagger->bootstrap_counts_.resize(num_counts);
  for (uint64_t b = 0; b < num_counts; ++b) {
    PAWS_RETURN_IF_ERROR(ar->ReadIntVector(&bagger->bootstrap_counts_[b]));
    if (bagger->bootstrap_counts_[b].size() !=
        static_cast<size_t>(bagger->num_train_rows_)) {
      return Status::InvalidArgument("Bagging: bootstrap count row mismatch");
    }
  }
  return std::unique_ptr<Classifier>(std::move(bagger));
}

StatusOr<double> BaggingClassifier::InfinitesimalJackknifeVariance(
    const std::vector<double>& x) const {
  if (!config_.track_bootstrap_counts || bootstrap_counts_.empty()) {
    return Status::FailedPrecondition(
        "IJ variance requires track_bootstrap_counts");
  }
  const int b = static_cast<int>(members_.size());
  std::vector<double> preds(b);
  double t_bar = 0.0;
  for (int j = 0; j < b; ++j) {
    preds[j] = members_[j]->PredictProb(x);
    t_bar += preds[j];
  }
  t_bar /= b;
  double var = 0.0;
  for (int i = 0; i < num_train_rows_; ++i) {
    double n_bar = 0.0;
    for (int j = 0; j < b; ++j) n_bar += bootstrap_counts_[j][i];
    n_bar /= b;
    double cov = 0.0;
    for (int j = 0; j < b; ++j) {
      cov += (bootstrap_counts_[j][i] - n_bar) * (preds[j] - t_bar);
    }
    cov /= b;
    var += cov * cov;
  }
  return var;
}

}  // namespace paws
