#include "ml/scoring_backend.h"

#include <algorithm>
#include <cmath>

#include "ml/compiled_forest.h"
#include "ml/compiled_gp.h"
#include "ml/compiled_linear.h"

namespace paws {

namespace {

// Row-chunk sizes for the reference batched paths: large enough that the
// per-chunk learner dispatch amortizes, small enough that serving-sized
// batches still split across threads. Effort-curve rows carry more work
// per row (every learner x the whole grid), hence the smaller grain.
constexpr int kPredictRowGrain = 64;
constexpr int kCurveRowGrain = 32;

/// Serves through the learners' virtual PredictBatchWithVariance — the
/// original IWareEnsemble arithmetic, chunked over rows. Stateless: every
/// call reads the ensemble state from the view.
class ReferenceScoringBackend : public ScoringBackend {
 public:
  const char* name() const override { return "reference"; }

  void PredictBatch(const WeakLearnerSetView& ens, const FeatureMatrixView& x,
                    double effort, const ParallelismConfig& parallelism,
                    std::vector<Prediction>* out) const override {
    const int n = x.rows();
    out->resize(n);
    if (n == 0) return;
    // Row chunks are independent: each chunk runs the full learner loop
    // over its sub-view and writes only its own rows, and the per-row
    // arithmetic (learner order, weights) does not depend on the chunking,
    // so the result is bit-identical for every thread count.
    ParallelFor(
        parallelism, 0, n, kPredictRowGrain,
        [&](std::int64_t lo64, std::int64_t hi64) {
          const int lo = static_cast<int>(lo64);
          const int cn = static_cast<int>(hi64 - lo64);
          const FeatureMatrixView chunk(x.Row(lo), cn, x.cols());
          // The qualified set depends only on `effort`, so each qualified
          // learner scores the whole chunk once and the mixture is
          // assembled per row.
          std::vector<double> mean(cn, 0.0), second(cn, 0.0);
          std::vector<Prediction> buf;
          double wsum = 0.0;
          for (size_t i = 0; i < ens.learners.size(); ++i) {
            if (ens.thresholds[i] > effort) continue;
            ens.learners[i]->PredictBatchWithVariance(chunk, &buf);
            wsum += ens.weights[i];
            for (int r = 0; r < cn; ++r) {
              const Prediction& p = buf[r];
              mean[r] += ens.weights[i] * p.prob;
              second[r] += ens.weights[i] * (p.variance + p.prob * p.prob);
            }
          }
          if (wsum <= 0.0) {
            // Effort below every threshold: fall back to the loosest
            // learner.
            ens.learners[0]->PredictBatchWithVariance(chunk, &buf);
            for (int r = 0; r < cn; ++r) (*out)[lo + r] = buf[r];
            return;
          }
          for (int r = 0; r < cn; ++r) {
            const double m = mean[r] / wsum;
            const double s = second[r] / wsum;
            (*out)[lo + r] = Prediction{m, std::max(0.0, s - m * m)};
          }
        });
  }

  void PredictBatch(const WeakLearnerSetView& ens, const FeatureMatrixView& x,
                    const std::vector<double>& efforts,
                    const ParallelismConfig& parallelism,
                    std::vector<Prediction>* out) const override {
    const int n = x.rows();
    const int k = x.cols();
    out->resize(n);
    if (n == 0) return;
    // Chunked over rows: every chunk gathers and scores its own qualifying
    // rows per learner. Each row's mixture sees the same learner
    // evaluations and accumulation order as the serial pass, so the result
    // is bit-identical for every thread count.
    ParallelFor(
        parallelism, 0, n, kPredictRowGrain,
        [&](std::int64_t lo64, std::int64_t hi64) {
          const int lo = static_cast<int>(lo64);
          const int hi = static_cast<int>(hi64);
          const int cn = hi - lo;
          const FeatureMatrixView chunk(x.Row(lo), cn, k);
          std::vector<double> wsum(cn, 0.0), mean(cn, 0.0), second(cn, 0.0);
          std::vector<double> gathered;  // reused per learner
          std::vector<int> rows_idx;     // chunk-relative
          std::vector<Prediction> buf;
          auto gather_rows = [&](const std::vector<int>& idx) {
            return GatherRows(chunk, idx, &gathered);
          };
          // Gather each learner's qualifying rows and score them in one
          // batch — the same learner evaluations as the pointwise loop,
          // amortized.
          for (size_t i = 0; i < ens.learners.size(); ++i) {
            rows_idx.clear();
            for (int r = 0; r < cn; ++r) {
              if (ens.thresholds[i] <= efforts[lo + r]) rows_idx.push_back(r);
            }
            if (rows_idx.empty()) continue;
            ens.learners[i]->PredictBatchWithVariance(gather_rows(rows_idx),
                                                      &buf);
            for (size_t j = 0; j < rows_idx.size(); ++j) {
              const int r = rows_idx[j];
              const Prediction& p = buf[j];
              wsum[r] += ens.weights[i];
              mean[r] += ens.weights[i] * p.prob;
              second[r] += ens.weights[i] * (p.variance + p.prob * p.prob);
            }
          }
          // Rows whose effort sits below every threshold fall back to the
          // loosest learner's raw prediction, exactly as the pointwise
          // path does.
          rows_idx.clear();
          for (int r = 0; r < cn; ++r) {
            if (wsum[r] <= 0.0) rows_idx.push_back(r);
          }
          if (!rows_idx.empty()) {
            ens.learners[0]->PredictBatchWithVariance(gather_rows(rows_idx),
                                                      &buf);
            for (size_t j = 0; j < rows_idx.size(); ++j) {
              (*out)[lo + rows_idx[j]] = buf[j];
            }
          }
          for (int r = 0; r < cn; ++r) {
            if (wsum[r] <= 0.0) continue;
            const double m = mean[r] / wsum[r];
            const double s = second[r] / wsum[r];
            (*out)[lo + r] = Prediction{m, std::max(0.0, s - m * m)};
          }
        });
  }

  void FillEffortCurves(const WeakLearnerSetView& ens,
                        const FeatureMatrixView& x,
                        const std::vector<double>& effort_grid,
                        const ParallelismConfig& parallelism,
                        EffortCurveTable* table) const override {
    const int n = x.rows();
    const int m = static_cast<int>(effort_grid.size());
    const int num_learners = static_cast<int>(ens.learners.size());
    table->num_cells = n;
    table->prob.assign(static_cast<size_t>(n) * m, 0.0);
    table->variance.assign(static_cast<size_t>(n) * m, 0.0);
    if (n == 0) return;
    // Cell chunks are independent: every weak learner scores a chunk at
    // most once (the effort grid only changes which of these cached votes
    // are mixed at each grid point), each chunk writes only its own table
    // rows, and per-cell arithmetic does not depend on the chunking — so
    // the table is bit-identical for every thread count. Learners whose
    // threshold exceeds the grid's top never vote and are skipped entirely
    // (learner 0 always runs: it serves the low-effort fallback).
    ParallelFor(
        parallelism, 0, n, kCurveRowGrain,
        [&](std::int64_t lo64, std::int64_t hi64) {
          const int lo = static_cast<int>(lo64);
          const int cn = static_cast<int>(hi64 - lo64);
          const FeatureMatrixView chunk(x.Row(lo), cn, x.cols());
          std::vector<std::vector<Prediction>> votes(num_learners);
          for (int i = 0; i < num_learners; ++i) {
            if (i > 0 && ens.thresholds[i] > effort_grid.back()) continue;
            ens.learners[i]->PredictBatchWithVariance(chunk, &votes[i]);
          }
          std::vector<double> mean(cn), second(cn);
          for (int k = 0; k < m; ++k) {
            const double effort = effort_grid[k];
            std::fill(mean.begin(), mean.end(), 0.0);
            std::fill(second.begin(), second.end(), 0.0);
            double wsum = 0.0;
            for (int i = 0; i < num_learners; ++i) {
              if (ens.thresholds[i] > effort) continue;
              wsum += ens.weights[i];
              for (int r = 0; r < cn; ++r) {
                const Prediction& p = votes[i][r];
                mean[r] += ens.weights[i] * p.prob;
                second[r] += ens.weights[i] * (p.variance + p.prob * p.prob);
              }
            }
            for (int r = 0; r < cn; ++r) {
              const size_t idx = static_cast<size_t>(lo + r) * m + k;
              if (wsum <= 0.0) {
                table->prob[idx] = votes[0][r].prob;
                table->variance[idx] = votes[0][r].variance;
              } else {
                const double mu = mean[r] / wsum;
                const double s = second[r] / wsum;
                table->prob[idx] = mu;
                table->variance[idx] = std::max(0.0, s - mu * mu);
              }
            }
          }
        });
  }
};

}  // namespace

std::unique_ptr<ScoringBackend> MakeReferenceScoringBackend() {
  return std::make_unique<ReferenceScoringBackend>();
}

std::unique_ptr<ScoringBackend> SelectScoringBackend(
    const std::vector<std::unique_ptr<Classifier>>& learners,
    const std::vector<double>& thresholds,
    const std::vector<double>& weights) {
  if (auto forest = CompiledForest::Compile(learners, thresholds, weights)) {
    return forest;
  }
  if (auto linear =
          CompiledLinearEnsemble::Compile(learners, thresholds, weights)) {
    return linear;
  }
  if (auto gp = CompiledGpEnsemble::Compile(learners, thresholds, weights)) {
    return gp;
  }
  return MakeReferenceScoringBackend();
}

}  // namespace paws
