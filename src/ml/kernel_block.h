#ifndef PAWS_ML_KERNEL_BLOCK_H_
#define PAWS_ML_KERNEL_BLOCK_H_

#include "util/cpu_features.h"

namespace paws {
namespace internal {

/// Kernel-block primitives for the compiled-GP sweep
/// (CompiledGpEnsemble::ScoreLearner), runtime-dispatched per CPU tier the
/// same way the compiled-forest walkers are. The big kernels are
/// register-blocked: the phase profile of the naive column-lane loops is
/// L2-bandwidth-bound (the inducing loop re-streams the standardized block
/// once per inducing point, the substitution re-streams the work block
/// once per pivot), so the widened tiers tile the row/pivot loop 8-16 deep
/// and hold the accumulators in registers — the streamed traffic drops by
/// the tile factor and only then does the lane width actually show up.
///
/// Bit-identity: every output element's reduction chain keeps the scalar
/// order — the squared distance accumulates in feature order, the forward
/// substitution subtracts pivots in ascending order after the W^1/2 scale
/// and divides last, each with separate mul/add/sub/div roundings (the
/// file builds with -ffp-contract=off; no FMA anywhere). Blocking only
/// reorders work ACROSS independent output columns and rows, never within
/// one element's chain, so every tier produces identical bits.
struct GpLaneOps {
  /// zt[f * m + j] = (rows[idx[j] * stride + f] - mu[f]) / sd[f] — the
  /// standardize divide, transposed so the kernels below read one
  /// contiguous lane row per feature. Widened tiers gather the strided
  /// reads; sub/div are element-wise IEEE ops either way.
  void (*StandardizeT)(const double* rows, int stride, const int* idx, int m,
                       int k, const double* mu, const double* sd, double* zt);
  /// out[i * m + j] = sum_f (xt[i * k + f] - zt[f * m + j])^2 for the
  /// whole n x m cross block, each element's sum in ascending f order —
  /// the distance half of RbfKernel::Eval, columns as lanes.
  void (*CrossKernelSq)(const double* xt, int n, int k, const double* zt,
                        int m, double* out);
  /// w[i * m + j] = sv * exp(-w[i * m + j] / denom) over the n x m block —
  /// the transcendental tail of RbfKernel::Eval, kept on scalar libm so
  /// exp rounds exactly as the reference's call does.
  void (*KernelTail)(double sv, double denom, double* w, int n, int m);
  /// In-place multi-RHS forward substitution, V = L \ (diag(sqrt_w) V):
  /// per column j and row i the op order is exactly the reference loop —
  /// v[i][j] *= sqrt_w[i]; v[i][j] -= chol[i][p] * v[p][j] for p = 0..i-1
  /// ascending (each v[p] already final); v[i][j] /= chol[i][i].
  void (*ForwardSubst)(const double* chol, const double* sqrt_w, int n,
                       double* v, int m);
  /// acc[j] += g * v[j] — one inducing point's term of the latent-mean
  /// GEMV; called in i-ascending order.
  void (*AccumScaled)(double g, const double* v, double* acc, int m);
  /// acc[j] += v[j]^2 — the latent-variance accumulation.
  void (*AccumSquare)(const double* v, double* acc, int m);
};

/// Ops table for `tier`. Tiers this build (or a non-x86 target) cannot
/// encode fall back to the scalar table; never returns nullptr.
const GpLaneOps* GetGpLaneOps(SimdTier tier);

}  // namespace internal
}  // namespace paws

#endif  // PAWS_ML_KERNEL_BLOCK_H_
