#include "ml/weight_optimizer.h"

#include <algorithm>
#include <cmath>

namespace paws {

namespace {

Status ValidateProblem(const WeightOptimizationProblem& p) {
  if (p.probs.empty()) {
    return Status::InvalidArgument("weight optimizer: no validation rows");
  }
  const size_t n = p.probs.size();
  const size_t num_classifiers = p.probs[0].size();
  if (num_classifiers == 0) {
    return Status::InvalidArgument("weight optimizer: no classifiers");
  }
  if (p.qualified.size() != n || p.labels.size() != n) {
    return Status::InvalidArgument("weight optimizer: size mismatch");
  }
  for (size_t r = 0; r < n; ++r) {
    if (p.probs[r].size() != num_classifiers ||
        p.qualified[r].size() != num_classifiers) {
      return Status::InvalidArgument("weight optimizer: ragged rows");
    }
    bool any = false;
    for (uint8_t q : p.qualified[r]) any = any || q;
    if (!any) {
      return Status::InvalidArgument(
          "weight optimizer: row with no qualified classifier");
    }
  }
  return Status::OK();
}

// Mixture probability for one row under weights w.
double RowMixture(const WeightOptimizationProblem& p, int r,
                  const std::vector<double>& w, double* total_weight) {
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (!p.qualified[r][i]) continue;
    num += w[i] * p.probs[r][i];
    den += w[i];
  }
  *total_weight = den;
  return den > 0.0 ? num / den : 0.5;
}

}  // namespace

StatusOr<double> MixtureLogLoss(const WeightOptimizationProblem& problem,
                                const std::vector<double>& weights,
                                double prob_clip) {
  PAWS_RETURN_IF_ERROR(ValidateProblem(problem));
  if (weights.size() != problem.probs[0].size()) {
    return Status::InvalidArgument("MixtureLogLoss: weight width mismatch");
  }
  const int n = static_cast<int>(problem.probs.size());
  double loss = 0.0;
  for (int r = 0; r < n; ++r) {
    double den = 0.0;
    const double p =
        std::clamp(RowMixture(problem, r, weights, &den), prob_clip,
                   1.0 - prob_clip);
    loss += problem.labels[r] == 1 ? -std::log(p) : -std::log(1.0 - p);
  }
  return loss / n;
}

StatusOr<std::vector<double>> OptimizeEnsembleWeights(
    const WeightOptimizationProblem& problem,
    const WeightOptimizerConfig& config) {
  PAWS_RETURN_IF_ERROR(ValidateProblem(problem));
  const int n = static_cast<int>(problem.probs.size());
  const int num_classifiers = static_cast<int>(problem.probs[0].size());

  std::vector<double> w(num_classifiers, 1.0 / num_classifiers);
  std::vector<double> grad(num_classifiers);
  for (int it = 0; it < config.iterations; ++it) {
    std::fill(grad.begin(), grad.end(), 0.0);
    for (int r = 0; r < n; ++r) {
      double den = 0.0;
      const double p_raw = RowMixture(problem, r, w, &den);
      const double p =
          std::clamp(p_raw, config.prob_clip, 1.0 - config.prob_clip);
      // dL/dp for binary cross entropy.
      const double dl_dp =
          problem.labels[r] == 1 ? -1.0 / p : 1.0 / (1.0 - p);
      // dp/dw_i = q_i (probs_i - p_raw) / den.
      for (int i = 0; i < num_classifiers; ++i) {
        if (!problem.qualified[r][i] || den <= 0.0) continue;
        grad[i] += dl_dp * (problem.probs[r][i] - p_raw) / den;
      }
    }
    for (double& g : grad) g /= n;
    // Exponentiated-gradient step keeps w on the simplex.
    double z = 0.0;
    for (int i = 0; i < num_classifiers; ++i) {
      w[i] *= std::exp(-config.learning_rate * grad[i]);
      // Floor avoids weights collapsing to exactly 0, which would leave
      // rows qualified only for that classifier without a vote.
      w[i] = std::max(w[i], 1e-12);
      z += w[i];
    }
    for (double& wi : w) wi /= z;
  }
  return w;
}

}  // namespace paws
