#include "ml/gaussian_process.h"

#include <algorithm>
#include <cmath>

#include "util/special.h"

namespace paws {

namespace {

constexpr uint32_t kGpSchemaVersion = 1;

}  // namespace

void SaveGaussianProcessConfig(const GaussianProcessConfig& config,
                               ArchiveWriter* ar) {
  ar->WriteDouble(config.kernel.length_scale);
  ar->WriteDouble(config.kernel.signal_variance);
  ar->WriteBool(config.scale_length_with_dim);
  ar->WriteI32(config.max_points);
  ar->WriteI32(config.max_newton_iterations);
  ar->WriteDouble(config.newton_tolerance);
}

StatusOr<GaussianProcessConfig> LoadGaussianProcessConfig(ArchiveReader* ar) {
  GaussianProcessConfig config;
  PAWS_RETURN_IF_ERROR(ar->ReadDouble(&config.kernel.length_scale));
  PAWS_RETURN_IF_ERROR(ar->ReadDouble(&config.kernel.signal_variance));
  PAWS_RETURN_IF_ERROR(ar->ReadBool(&config.scale_length_with_dim));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&config.max_points));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&config.max_newton_iterations));
  PAWS_RETURN_IF_ERROR(ar->ReadDouble(&config.newton_tolerance));
  return config;
}

Status GaussianProcessClassifier::Fit(const Dataset& data, Rng* rng) {
  if (data.empty()) {
    return Status::InvalidArgument("GaussianProcess: empty data");
  }
  CheckOrDie(rng != nullptr, "GaussianProcessClassifier::Fit requires an Rng");
  standardizer_ = Standardizer::Fit(data);
  kernel_ = config_.kernel;
  if (config_.scale_length_with_dim) {
    kernel_.length_scale *= std::sqrt(static_cast<double>(data.num_features()));
  }

  // Subsample to max_points: keep positives first (they are scarce and
  // reliable), fill the remainder with random negatives.
  std::vector<int> pos, neg;
  for (int i = 0; i < data.size(); ++i) {
    (data.label(i) == 1 ? pos : neg).push_back(i);
  }
  std::vector<int> chosen;
  if (data.size() <= config_.max_points) {
    for (int i = 0; i < data.size(); ++i) chosen.push_back(i);
  } else {
    if (static_cast<int>(pos.size()) > config_.max_points / 2) {
      // Cap positives at half the budget to keep some negatives.
      const std::vector<int> sub = rng->SampleWithoutReplacement(
          static_cast<int>(pos.size()), config_.max_points / 2);
      for (int s : sub) chosen.push_back(pos[s]);
    } else {
      chosen = pos;
    }
    const int want_neg = config_.max_points - static_cast<int>(chosen.size());
    const int take = std::min<int>(want_neg, static_cast<int>(neg.size()));
    const std::vector<int> sub =
        rng->SampleWithoutReplacement(static_cast<int>(neg.size()), take);
    for (int s : sub) chosen.push_back(neg[s]);
  }

  const int n = static_cast<int>(chosen.size());
  x_train_.assign(n, {});
  std::vector<double> y(n);  // +/- 1
  for (int i = 0; i < n; ++i) {
    x_train_[i] = standardizer_.Transform(data.RowVector(chosen[i]));
    y[i] = data.label(chosen[i]) == 1 ? 1.0 : -1.0;
  }

  const Matrix k = kernel_.GramMatrix(x_train_);

  // Laplace mode finding (R&W Algorithm 3.1) with the logistic likelihood:
  //   p(y_i | f_i) = sigmoid(y_i f_i)
  //   grad_i = (y_i + 1)/2 - pi_i          with pi_i = sigmoid(f_i)
  //   W_ii  = pi_i (1 - pi_i)
  std::vector<double> f(n, 0.0);
  std::vector<double> grad(n), w(n);
  double prev_objective = -1e300;
  for (int it = 0; it < config_.max_newton_iterations; ++it) {
    for (int i = 0; i < n; ++i) {
      const double pi = Sigmoid(f[i]);
      grad[i] = (y[i] + 1.0) / 2.0 - pi;
      w[i] = std::max(1e-10, pi * (1.0 - pi));
    }
    // B = I + W^1/2 K W^1/2.
    Matrix b(n, n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        b(i, j) = std::sqrt(w[i]) * k(i, j) * std::sqrt(w[j]);
      }
      b(i, i) += 1.0;
    }
    auto chol = CholeskyFactor(b);
    if (!chol.ok()) return chol.status();
    // b_vec = W f + grad;  a = b_vec - W^1/2 B^{-1} W^1/2 K b_vec.
    std::vector<double> b_vec(n);
    for (int i = 0; i < n; ++i) b_vec[i] = w[i] * f[i] + grad[i];
    std::vector<double> kb = k.MultiplyVector(b_vec);
    std::vector<double> rhs(n);
    for (int i = 0; i < n; ++i) rhs[i] = std::sqrt(w[i]) * kb[i];
    const std::vector<double> solved = CholeskySolve(chol.value(), rhs);
    std::vector<double> a(n);
    for (int i = 0; i < n; ++i) a[i] = b_vec[i] - std::sqrt(w[i]) * solved[i];
    f = k.MultiplyVector(a);

    // Objective: -0.5 a^T f + sum log sigmoid(y_i f_i).
    double objective = -0.5 * Dot(a, f);
    for (int i = 0; i < n; ++i) objective += -Log1pExp(-y[i] * f[i]);
    if (std::fabs(objective - prev_objective) < config_.newton_tolerance) {
      prev_objective = objective;
      break;
    }
    prev_objective = objective;
  }

  // Cache quantities for prediction (Algorithm 3.2).
  grad_log_lik_.assign(n, 0.0);
  sqrt_w_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const double pi = Sigmoid(f[i]);
    grad_log_lik_[i] = (y[i] + 1.0) / 2.0 - pi;
    sqrt_w_[i] = std::sqrt(std::max(1e-10, pi * (1.0 - pi)));
  }
  Matrix b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      b(i, j) = sqrt_w_[i] * k(i, j) * sqrt_w_[j];
    }
    b(i, i) += 1.0;
  }
  auto chol = CholeskyFactor(b);
  if (!chol.ok()) return chol.status();
  chol_b_ = std::move(chol).value();
  fitted_ = true;
  return Status::OK();
}

void GaussianProcessClassifier::PredictBatch(
    const FeatureMatrixView& x, std::vector<double>* out_probs) const {
  std::vector<Prediction> preds;
  PredictBatchWithVariance(x, &preds);
  out_probs->resize(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) (*out_probs)[i] = preds[i].prob;
}

void GaussianProcessClassifier::PredictBatchWithVariance(
    const FeatureMatrixView& x, std::vector<Prediction>* out) const {
  CheckOrDie(fitted_, "GaussianProcessClassifier before Fit");
  CheckOrDie(x.cols() == standardizer_.num_features(),
             "GaussianProcessClassifier: feature width mismatch");
  const int n = static_cast<int>(x_train_.size());
  const int total = x.rows();
  const int kf = x.cols();
  out->resize(total);
  const std::vector<double>& mu = standardizer_.mean();
  const std::vector<double>& sd = standardizer_.stddev();
  const double prior = kernel_.signal_variance;
  // Rows are processed in column chunks so the (inducing x rows) scratch
  // blocks stay cache-sized even for park-scale batches.
  const int kChunk = 256;
  std::vector<double> z;     // chunk rows, standardized (m x kf)
  std::vector<double> work;  // K_* then W^1/2 K_* then V = L \ ... (n x m)
  std::vector<double> mean, var;
  for (int begin = 0; begin < total; begin += kChunk) {
    const int m = std::min(kChunk, total - begin);
    z.resize(static_cast<size_t>(m) * kf);
    for (int j = 0; j < m; ++j) {
      const double* row = x.Row(begin + j);
      for (int f = 0; f < kf; ++f) {
        z[static_cast<size_t>(j) * kf + f] = (row[f] - mu[f]) / sd[f];
      }
    }
    // Cross-covariance block K_*[i][j] = k(x_train_i, z_j), through the
    // same RbfKernel::Eval that Fit's Gram matrix uses.
    work.resize(static_cast<size_t>(n) * m);
    for (int i = 0; i < n; ++i) {
      const double* xt = x_train_[i].data();
      double* krow = work.data() + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) {
        krow[j] = kernel_.Eval(xt, z.data() + static_cast<size_t>(j) * kf, kf);
      }
    }
    // Latent means: mean_j = sum_i K_*[i][j] * grad_i (i ascending, matching
    // the one-row dot product bit for bit).
    mean.assign(m, 0.0);
    for (int i = 0; i < n; ++i) {
      const double g = grad_log_lik_[i];
      const double* krow = work.data() + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) mean[j] += krow[j] * g;
    }
    // Multi-RHS forward substitution, in place: V = L \ (W^1/2 K_*). Each
    // column follows the scalar ForwardSubstitute order exactly; the row
    // sweeps vectorize across columns — the batch-only amortization.
    for (int i = 0; i < n; ++i) {
      double* vrow = work.data() + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) vrow[j] *= sqrt_w_[i];
      for (int k = 0; k < i; ++k) {
        const double l_ik = chol_b_(i, k);
        const double* vk = work.data() + static_cast<size_t>(k) * m;
        for (int j = 0; j < m; ++j) vrow[j] -= l_ik * vk[j];
      }
      const double diag = chol_b_(i, i);
      for (int j = 0; j < m; ++j) vrow[j] /= diag;
    }
    // Latent variances: var_j = prior - sum_i V[i][j]^2 (i ascending).
    var.assign(m, 0.0);
    for (int i = 0; i < n; ++i) {
      const double* vrow = work.data() + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) var[j] += vrow[j] * vrow[j];
    }
    for (int j = 0; j < m; ++j) {
      const double v = std::max(0.0, prior - var[j]);
      // MacKay's approximation of the logistic-Gaussian integral:
      //   E[sigmoid(f)] ~= sigmoid(kappa * mean), kappa = 1/sqrt(1 + pi v/8).
      const double kappa = 1.0 / std::sqrt(1.0 + M_PI * v / 8.0);
      (*out)[begin + j] = Prediction{Sigmoid(kappa * mean[j]), v};
    }
  }
}

std::unique_ptr<Classifier> GaussianProcessClassifier::CloneUntrained() const {
  return std::make_unique<GaussianProcessClassifier>(config_);
}

void GaussianProcessClassifier::Save(ArchiveWriter* ar) const {
  ar->WriteU32(kGpSchemaVersion);
  SaveGaussianProcessConfig(config_, ar);
  ar->WriteBool(fitted_);
  if (!fitted_) return;
  // The *effective* kernel (length scale resolved at fit time), so a
  // loaded model does not depend on re-deriving it from the config.
  ar->WriteDouble(kernel_.length_scale);
  ar->WriteDouble(kernel_.signal_variance);
  standardizer_.Save(ar);
  const int n = static_cast<int>(x_train_.size());
  const int k = standardizer_.num_features();
  ar->WriteI32(n);
  ar->WriteI32(k);
  for (const std::vector<double>& row : x_train_) {
    for (double v : row) ar->WriteDouble(v);
  }
  ar->WriteDoubleVector(grad_log_lik_);
  ar->WriteDoubleVector(sqrt_w_);
  chol_b_.Save(ar);
}

StatusOr<std::unique_ptr<Classifier>> GaussianProcessClassifier::Load(
    ArchiveReader* ar) {
  uint32_t version = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU32(&version));
  if (version != kGpSchemaVersion) {
    return Status::InvalidArgument(
        "GaussianProcess: unsupported schema version " +
        std::to_string(version));
  }
  PAWS_ASSIGN_OR_RETURN(const GaussianProcessConfig config,
                        LoadGaussianProcessConfig(ar));
  auto gp = std::make_unique<GaussianProcessClassifier>(config);
  PAWS_RETURN_IF_ERROR(ar->ReadBool(&gp->fitted_));
  if (!gp->fitted_) return std::unique_ptr<Classifier>(std::move(gp));
  PAWS_RETURN_IF_ERROR(ar->ReadDouble(&gp->kernel_.length_scale));
  PAWS_RETURN_IF_ERROR(ar->ReadDouble(&gp->kernel_.signal_variance));
  PAWS_ASSIGN_OR_RETURN(gp->standardizer_, Standardizer::Load(ar));
  int n = 0, k = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&n));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&k));
  if (n < 0 || k != gp->standardizer_.num_features() ||
      static_cast<uint64_t>(n) * k > ar->remaining() / 8) {
    return Status::InvalidArgument("GaussianProcess: bad inducing-set shape");
  }
  gp->x_train_.assign(n, std::vector<double>(k));
  for (std::vector<double>& row : gp->x_train_) {
    for (double& v : row) PAWS_RETURN_IF_ERROR(ar->ReadDouble(&v));
  }
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&gp->grad_log_lik_));
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&gp->sqrt_w_));
  PAWS_ASSIGN_OR_RETURN(gp->chol_b_, Matrix::Load(ar));
  if (gp->grad_log_lik_.size() != static_cast<size_t>(n) ||
      gp->sqrt_w_.size() != static_cast<size_t>(n) ||
      gp->chol_b_.rows() != n || gp->chol_b_.cols() != n) {
    return Status::InvalidArgument(
        "GaussianProcess: posterior cache shape mismatch");
  }
  return std::unique_ptr<Classifier>(std::move(gp));
}

}  // namespace paws
