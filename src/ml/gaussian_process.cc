#include "ml/gaussian_process.h"

#include <algorithm>
#include <cmath>

#include "util/special.h"

namespace paws {

Status GaussianProcessClassifier::Fit(const Dataset& data, Rng* rng) {
  if (data.empty()) {
    return Status::InvalidArgument("GaussianProcess: empty data");
  }
  CheckOrDie(rng != nullptr, "GaussianProcessClassifier::Fit requires an Rng");
  standardizer_ = Standardizer::Fit(data);
  kernel_ = config_.kernel;
  if (config_.scale_length_with_dim) {
    kernel_.length_scale *= std::sqrt(static_cast<double>(data.num_features()));
  }

  // Subsample to max_points: keep positives first (they are scarce and
  // reliable), fill the remainder with random negatives.
  std::vector<int> pos, neg;
  for (int i = 0; i < data.size(); ++i) {
    (data.label(i) == 1 ? pos : neg).push_back(i);
  }
  std::vector<int> chosen;
  if (data.size() <= config_.max_points) {
    for (int i = 0; i < data.size(); ++i) chosen.push_back(i);
  } else {
    if (static_cast<int>(pos.size()) > config_.max_points / 2) {
      // Cap positives at half the budget to keep some negatives.
      const std::vector<int> sub = rng->SampleWithoutReplacement(
          static_cast<int>(pos.size()), config_.max_points / 2);
      for (int s : sub) chosen.push_back(pos[s]);
    } else {
      chosen = pos;
    }
    const int want_neg = config_.max_points - static_cast<int>(chosen.size());
    const int take = std::min<int>(want_neg, static_cast<int>(neg.size()));
    const std::vector<int> sub =
        rng->SampleWithoutReplacement(static_cast<int>(neg.size()), take);
    for (int s : sub) chosen.push_back(neg[s]);
  }

  const int n = static_cast<int>(chosen.size());
  x_train_.assign(n, {});
  std::vector<double> y(n);  // +/- 1
  for (int i = 0; i < n; ++i) {
    x_train_[i] = standardizer_.Transform(data.RowVector(chosen[i]));
    y[i] = data.label(chosen[i]) == 1 ? 1.0 : -1.0;
  }

  const Matrix k = kernel_.GramMatrix(x_train_);

  // Laplace mode finding (R&W Algorithm 3.1) with the logistic likelihood:
  //   p(y_i | f_i) = sigmoid(y_i f_i)
  //   grad_i = (y_i + 1)/2 - pi_i          with pi_i = sigmoid(f_i)
  //   W_ii  = pi_i (1 - pi_i)
  std::vector<double> f(n, 0.0);
  std::vector<double> grad(n), w(n);
  double prev_objective = -1e300;
  for (int it = 0; it < config_.max_newton_iterations; ++it) {
    for (int i = 0; i < n; ++i) {
      const double pi = Sigmoid(f[i]);
      grad[i] = (y[i] + 1.0) / 2.0 - pi;
      w[i] = std::max(1e-10, pi * (1.0 - pi));
    }
    // B = I + W^1/2 K W^1/2.
    Matrix b(n, n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        b(i, j) = std::sqrt(w[i]) * k(i, j) * std::sqrt(w[j]);
      }
      b(i, i) += 1.0;
    }
    auto chol = CholeskyFactor(b);
    if (!chol.ok()) return chol.status();
    // b_vec = W f + grad;  a = b_vec - W^1/2 B^{-1} W^1/2 K b_vec.
    std::vector<double> b_vec(n);
    for (int i = 0; i < n; ++i) b_vec[i] = w[i] * f[i] + grad[i];
    std::vector<double> kb = k.MultiplyVector(b_vec);
    std::vector<double> rhs(n);
    for (int i = 0; i < n; ++i) rhs[i] = std::sqrt(w[i]) * kb[i];
    const std::vector<double> solved = CholeskySolve(chol.value(), rhs);
    std::vector<double> a(n);
    for (int i = 0; i < n; ++i) a[i] = b_vec[i] - std::sqrt(w[i]) * solved[i];
    f = k.MultiplyVector(a);

    // Objective: -0.5 a^T f + sum log sigmoid(y_i f_i).
    double objective = -0.5 * Dot(a, f);
    for (int i = 0; i < n; ++i) objective += -Log1pExp(-y[i] * f[i]);
    if (std::fabs(objective - prev_objective) < config_.newton_tolerance) {
      prev_objective = objective;
      break;
    }
    prev_objective = objective;
  }

  // Cache quantities for prediction (Algorithm 3.2).
  grad_log_lik_.assign(n, 0.0);
  sqrt_w_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const double pi = Sigmoid(f[i]);
    grad_log_lik_[i] = (y[i] + 1.0) / 2.0 - pi;
    sqrt_w_[i] = std::sqrt(std::max(1e-10, pi * (1.0 - pi)));
  }
  Matrix b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      b(i, j) = sqrt_w_[i] * k(i, j) * sqrt_w_[j];
    }
    b(i, i) += 1.0;
  }
  auto chol = CholeskyFactor(b);
  if (!chol.ok()) return chol.status();
  chol_b_ = std::move(chol).value();
  fitted_ = true;
  return Status::OK();
}

void GaussianProcessClassifier::PredictBatch(
    const FeatureMatrixView& x, std::vector<double>* out_probs) const {
  std::vector<Prediction> preds;
  PredictBatchWithVariance(x, &preds);
  out_probs->resize(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) (*out_probs)[i] = preds[i].prob;
}

void GaussianProcessClassifier::PredictBatchWithVariance(
    const FeatureMatrixView& x, std::vector<Prediction>* out) const {
  CheckOrDie(fitted_, "GaussianProcessClassifier before Fit");
  CheckOrDie(x.cols() == standardizer_.num_features(),
             "GaussianProcessClassifier: feature width mismatch");
  const int n = static_cast<int>(x_train_.size());
  const int total = x.rows();
  const int kf = x.cols();
  out->resize(total);
  const std::vector<double>& mu = standardizer_.mean();
  const std::vector<double>& sd = standardizer_.stddev();
  const double prior = kernel_.signal_variance;
  // Rows are processed in column chunks so the (inducing x rows) scratch
  // blocks stay cache-sized even for park-scale batches.
  const int kChunk = 256;
  std::vector<double> z;     // chunk rows, standardized (m x kf)
  std::vector<double> work;  // K_* then W^1/2 K_* then V = L \ ... (n x m)
  std::vector<double> mean, var;
  for (int begin = 0; begin < total; begin += kChunk) {
    const int m = std::min(kChunk, total - begin);
    z.resize(static_cast<size_t>(m) * kf);
    for (int j = 0; j < m; ++j) {
      const double* row = x.Row(begin + j);
      for (int f = 0; f < kf; ++f) {
        z[static_cast<size_t>(j) * kf + f] = (row[f] - mu[f]) / sd[f];
      }
    }
    // Cross-covariance block K_*[i][j] = k(x_train_i, z_j), through the
    // same RbfKernel::Eval that Fit's Gram matrix uses.
    work.resize(static_cast<size_t>(n) * m);
    for (int i = 0; i < n; ++i) {
      const double* xt = x_train_[i].data();
      double* krow = work.data() + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) {
        krow[j] = kernel_.Eval(xt, z.data() + static_cast<size_t>(j) * kf, kf);
      }
    }
    // Latent means: mean_j = sum_i K_*[i][j] * grad_i (i ascending, matching
    // the one-row dot product bit for bit).
    mean.assign(m, 0.0);
    for (int i = 0; i < n; ++i) {
      const double g = grad_log_lik_[i];
      const double* krow = work.data() + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) mean[j] += krow[j] * g;
    }
    // Multi-RHS forward substitution, in place: V = L \ (W^1/2 K_*). Each
    // column follows the scalar ForwardSubstitute order exactly; the row
    // sweeps vectorize across columns — the batch-only amortization.
    for (int i = 0; i < n; ++i) {
      double* vrow = work.data() + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) vrow[j] *= sqrt_w_[i];
      for (int k = 0; k < i; ++k) {
        const double l_ik = chol_b_(i, k);
        const double* vk = work.data() + static_cast<size_t>(k) * m;
        for (int j = 0; j < m; ++j) vrow[j] -= l_ik * vk[j];
      }
      const double diag = chol_b_(i, i);
      for (int j = 0; j < m; ++j) vrow[j] /= diag;
    }
    // Latent variances: var_j = prior - sum_i V[i][j]^2 (i ascending).
    var.assign(m, 0.0);
    for (int i = 0; i < n; ++i) {
      const double* vrow = work.data() + static_cast<size_t>(i) * m;
      for (int j = 0; j < m; ++j) var[j] += vrow[j] * vrow[j];
    }
    for (int j = 0; j < m; ++j) {
      const double v = std::max(0.0, prior - var[j]);
      // MacKay's approximation of the logistic-Gaussian integral:
      //   E[sigmoid(f)] ~= sigmoid(kappa * mean), kappa = 1/sqrt(1 + pi v/8).
      const double kappa = 1.0 / std::sqrt(1.0 + M_PI * v / 8.0);
      (*out)[begin + j] = Prediction{Sigmoid(kappa * mean[j]), v};
    }
  }
}

std::unique_ptr<Classifier> GaussianProcessClassifier::CloneUntrained() const {
  return std::make_unique<GaussianProcessClassifier>(config_);
}

}  // namespace paws
