#include "ml/gaussian_process.h"

#include <algorithm>
#include <cmath>

#include "util/special.h"

namespace paws {

Status GaussianProcessClassifier::Fit(const Dataset& data, Rng* rng) {
  if (data.empty()) {
    return Status::InvalidArgument("GaussianProcess: empty data");
  }
  CheckOrDie(rng != nullptr, "GaussianProcessClassifier::Fit requires an Rng");
  standardizer_ = Standardizer::Fit(data);
  kernel_ = config_.kernel;
  if (config_.scale_length_with_dim) {
    kernel_.length_scale *= std::sqrt(static_cast<double>(data.num_features()));
  }

  // Subsample to max_points: keep positives first (they are scarce and
  // reliable), fill the remainder with random negatives.
  std::vector<int> pos, neg;
  for (int i = 0; i < data.size(); ++i) {
    (data.label(i) == 1 ? pos : neg).push_back(i);
  }
  std::vector<int> chosen;
  if (data.size() <= config_.max_points) {
    for (int i = 0; i < data.size(); ++i) chosen.push_back(i);
  } else {
    if (static_cast<int>(pos.size()) > config_.max_points / 2) {
      // Cap positives at half the budget to keep some negatives.
      const std::vector<int> sub = rng->SampleWithoutReplacement(
          static_cast<int>(pos.size()), config_.max_points / 2);
      for (int s : sub) chosen.push_back(pos[s]);
    } else {
      chosen = pos;
    }
    const int want_neg = config_.max_points - static_cast<int>(chosen.size());
    const int take = std::min<int>(want_neg, static_cast<int>(neg.size()));
    const std::vector<int> sub =
        rng->SampleWithoutReplacement(static_cast<int>(neg.size()), take);
    for (int s : sub) chosen.push_back(neg[s]);
  }

  const int n = static_cast<int>(chosen.size());
  x_train_.assign(n, {});
  std::vector<double> y(n);  // +/- 1
  for (int i = 0; i < n; ++i) {
    x_train_[i] = standardizer_.Transform(data.RowVector(chosen[i]));
    y[i] = data.label(chosen[i]) == 1 ? 1.0 : -1.0;
  }

  const Matrix k = kernel_.GramMatrix(x_train_);

  // Laplace mode finding (R&W Algorithm 3.1) with the logistic likelihood:
  //   p(y_i | f_i) = sigmoid(y_i f_i)
  //   grad_i = (y_i + 1)/2 - pi_i          with pi_i = sigmoid(f_i)
  //   W_ii  = pi_i (1 - pi_i)
  std::vector<double> f(n, 0.0);
  std::vector<double> grad(n), w(n);
  double prev_objective = -1e300;
  for (int it = 0; it < config_.max_newton_iterations; ++it) {
    for (int i = 0; i < n; ++i) {
      const double pi = Sigmoid(f[i]);
      grad[i] = (y[i] + 1.0) / 2.0 - pi;
      w[i] = std::max(1e-10, pi * (1.0 - pi));
    }
    // B = I + W^1/2 K W^1/2.
    Matrix b(n, n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        b(i, j) = std::sqrt(w[i]) * k(i, j) * std::sqrt(w[j]);
      }
      b(i, i) += 1.0;
    }
    auto chol = CholeskyFactor(b);
    if (!chol.ok()) return chol.status();
    // b_vec = W f + grad;  a = b_vec - W^1/2 B^{-1} W^1/2 K b_vec.
    std::vector<double> b_vec(n);
    for (int i = 0; i < n; ++i) b_vec[i] = w[i] * f[i] + grad[i];
    std::vector<double> kb = k.MultiplyVector(b_vec);
    std::vector<double> rhs(n);
    for (int i = 0; i < n; ++i) rhs[i] = std::sqrt(w[i]) * kb[i];
    const std::vector<double> solved = CholeskySolve(chol.value(), rhs);
    std::vector<double> a(n);
    for (int i = 0; i < n; ++i) a[i] = b_vec[i] - std::sqrt(w[i]) * solved[i];
    f = k.MultiplyVector(a);

    // Objective: -0.5 a^T f + sum log sigmoid(y_i f_i).
    double objective = -0.5 * Dot(a, f);
    for (int i = 0; i < n; ++i) objective += -Log1pExp(-y[i] * f[i]);
    if (std::fabs(objective - prev_objective) < config_.newton_tolerance) {
      prev_objective = objective;
      break;
    }
    prev_objective = objective;
  }

  // Cache quantities for prediction (Algorithm 3.2).
  grad_log_lik_.assign(n, 0.0);
  sqrt_w_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const double pi = Sigmoid(f[i]);
    grad_log_lik_[i] = (y[i] + 1.0) / 2.0 - pi;
    sqrt_w_[i] = std::sqrt(std::max(1e-10, pi * (1.0 - pi)));
  }
  Matrix b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      b(i, j) = sqrt_w_[i] * k(i, j) * sqrt_w_[j];
    }
    b(i, i) += 1.0;
  }
  auto chol = CholeskyFactor(b);
  if (!chol.ok()) return chol.status();
  chol_b_ = std::move(chol).value();
  fitted_ = true;
  return Status::OK();
}

void GaussianProcessClassifier::LatentPosterior(const std::vector<double>& z,
                                                double* mean,
                                                double* variance) const {
  const int n = static_cast<int>(x_train_.size());
  const std::vector<double> k_star = kernel_.CrossVector(x_train_, z);
  *mean = Dot(k_star, grad_log_lik_);
  // v = L \ (W^1/2 k_star); var = k(x,x) - v.v.
  std::vector<double> rhs(n);
  for (int i = 0; i < n; ++i) rhs[i] = sqrt_w_[i] * k_star[i];
  const std::vector<double> v = ForwardSubstitute(chol_b_, rhs);
  const double prior = kernel_.signal_variance;
  *variance = std::max(0.0, prior - Dot(v, v));
}

double GaussianProcessClassifier::PredictProb(
    const std::vector<double>& x) const {
  return PredictWithVariance(x).prob;
}

Prediction GaussianProcessClassifier::PredictWithVariance(
    const std::vector<double>& x) const {
  CheckOrDie(fitted_, "GaussianProcessClassifier before Fit");
  const std::vector<double> z = standardizer_.Transform(x);
  double mean = 0.0, var = 0.0;
  LatentPosterior(z, &mean, &var);
  // MacKay's approximation of the logistic-Gaussian integral:
  //   E[sigmoid(f)] ~= sigmoid(kappa * mean), kappa = 1/sqrt(1 + pi v / 8).
  const double kappa = 1.0 / std::sqrt(1.0 + M_PI * var / 8.0);
  Prediction out;
  out.prob = Sigmoid(kappa * mean);
  out.variance = var;
  return out;
}

std::unique_ptr<Classifier> GaussianProcessClassifier::CloneUntrained() const {
  return std::make_unique<GaussianProcessClassifier>(config_);
}

}  // namespace paws
