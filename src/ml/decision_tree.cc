#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace paws {

namespace {

constexpr uint32_t kTreeSchemaVersion = 1;

double LeafProb(int n_pos, int n) {
  return (n_pos + 1.0) / (n + 2.0);  // Laplace smoothing
}

}  // namespace

void SaveDecisionTreeConfig(const DecisionTreeConfig& config,
                            ArchiveWriter* ar) {
  ar->WriteI32(config.max_depth);
  ar->WriteI32(config.min_samples_split);
  ar->WriteI32(config.min_samples_leaf);
  ar->WriteI32(config.max_features);
}

StatusOr<DecisionTreeConfig> LoadDecisionTreeConfig(ArchiveReader* ar) {
  DecisionTreeConfig config;
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&config.max_depth));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&config.min_samples_split));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&config.min_samples_leaf));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&config.max_features));
  return config;
}

Status DecisionTree::Fit(const Dataset& data, Rng* rng) {
  if (data.empty()) return Status::InvalidArgument("DecisionTree: empty data");
  CheckOrDie(rng != nullptr, "DecisionTree::Fit requires an Rng");
  nodes_.clear();
  std::vector<int> indices(data.size());
  for (int i = 0; i < data.size(); ++i) indices[i] = i;
  BuildNode(data, &indices, 0, data.size(), 0, rng);
  return Status::OK();
}

int DecisionTree::BuildNode(const Dataset& data, std::vector<int>* indices,
                            int begin, int end, int depth, Rng* rng) {
  const int n = end - begin;
  int n_pos = 0;
  for (int i = begin; i < end; ++i) n_pos += data.label((*indices)[i]);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].prob = LeafProb(n_pos, n);

  const bool pure = (n_pos == 0 || n_pos == n);
  if (depth >= config_.max_depth || n < config_.min_samples_split || pure) {
    return node_id;
  }

  // Candidate features: all, or a random subset (random-forest style).
  const int k = data.num_features();
  std::vector<int> features;
  if (config_.max_features > 0 && config_.max_features < k) {
    features = rng->SampleWithoutReplacement(k, config_.max_features);
  } else {
    features.resize(k);
    for (int f = 0; f < k; ++f) features[f] = f;
  }

  // Find the best Gini split. parent impurity is constant, so we minimize
  // the weighted child impurity n_l*g_l + n_r*g_r.
  double best_score = 1e300;
  int best_feature = -1;
  double best_threshold = 0.0;
  std::vector<std::pair<double, int>> vals(n);  // (feature value, label)
  for (int f : features) {
    for (int i = 0; i < n; ++i) {
      const int row = (*indices)[begin + i];
      vals[i] = {data.Row(row)[f], data.label(row)};
    }
    std::sort(vals.begin(), vals.end());
    int left_pos = 0;
    for (int i = 0; i < n - 1; ++i) {
      left_pos += vals[i].second;
      // Can only split between distinct values.
      if (vals[i].first == vals[i + 1].first) continue;
      const int nl = i + 1;
      const int nr = n - nl;
      if (nl < config_.min_samples_leaf || nr < config_.min_samples_leaf) {
        continue;
      }
      const double pl = static_cast<double>(left_pos) / nl;
      const double pr = static_cast<double>(n_pos - left_pos) / nr;
      const double gini_l = 2.0 * pl * (1.0 - pl);
      const double gini_r = 2.0 * pr * (1.0 - pr);
      const double score = nl * gini_l + nr * gini_r;
      if (score < best_score) {
        best_score = score;
        best_feature = f;
        best_threshold = 0.5 * (vals[i].first + vals[i + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;  // no valid split

  // Partition indices in place around the threshold.
  const auto mid_it = std::partition(
      indices->begin() + begin, indices->begin() + end, [&](int row) {
        return data.Row(row)[best_feature] <= best_threshold;
      });
  const int mid = static_cast<int>(mid_it - indices->begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = BuildNode(data, indices, begin, mid, depth + 1, rng);
  const int right = BuildNode(data, indices, mid, end, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::PredictRow(const double* x, int width) const {
  int cur = 0;
  while (nodes_[cur].left != -1) {
    const Node& node = nodes_[cur];
    CheckOrDie(node.feature < width, "DecisionTree: feature vector too short");
    cur = x[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[cur].prob;
}

void DecisionTree::PredictBatch(const FeatureMatrixView& x,
                                std::vector<double>* out_probs) const {
  CheckOrDie(!nodes_.empty(), "DecisionTree::PredictBatch before Fit");
  out_probs->resize(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    (*out_probs)[i] = PredictRow(x.Row(i), x.cols());
  }
}

std::unique_ptr<Classifier> DecisionTree::CloneUntrained() const {
  return std::make_unique<DecisionTree>(config_);
}

void DecisionTree::Save(ArchiveWriter* ar) const {
  ar->WriteU32(kTreeSchemaVersion);
  SaveDecisionTreeConfig(config_, ar);
  ar->WriteU64(nodes_.size());
  for (const Node& node : nodes_) {
    ar->WriteI32(node.feature);
    ar->WriteDouble(node.threshold);
    ar->WriteI32(node.left);
    ar->WriteI32(node.right);
    ar->WriteDouble(node.prob);
  }
}

StatusOr<std::unique_ptr<Classifier>> DecisionTree::Load(ArchiveReader* ar) {
  uint32_t version = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU32(&version));
  if (version != kTreeSchemaVersion) {
    return Status::InvalidArgument("DecisionTree: unsupported schema version " +
                                   std::to_string(version));
  }
  PAWS_ASSIGN_OR_RETURN(const DecisionTreeConfig config,
                        LoadDecisionTreeConfig(ar));
  auto tree = std::make_unique<DecisionTree>(config);
  uint64_t count = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU64(&count));
  // Each serialized node is 28 bytes; reject counts the section cannot hold
  // before allocating.
  if (count > ar->remaining() / 28) {
    return Status::InvalidArgument("DecisionTree: node count overruns archive");
  }
  tree->nodes_.resize(count);
  const int n = static_cast<int>(count);
  for (int i = 0; i < n; ++i) {
    Node& node = tree->nodes_[i];
    PAWS_RETURN_IF_ERROR(ar->ReadI32(&node.feature));
    PAWS_RETURN_IF_ERROR(ar->ReadDouble(&node.threshold));
    PAWS_RETURN_IF_ERROR(ar->ReadI32(&node.left));
    PAWS_RETURN_IF_ERROR(ar->ReadI32(&node.right));
    PAWS_RETURN_IF_ERROR(ar->ReadDouble(&node.prob));
    // Structural validation so PredictRow cannot walk out of bounds or
    // loop: leaves have both children unset, internal nodes point strictly
    // forward (BuildNode appends children after their parent).
    const bool leaf = node.left == -1 && node.right == -1;
    const bool internal = node.feature >= 0 && node.left > i && node.left < n &&
                          node.right > i && node.right < n;
    if (!leaf && !internal) {
      return Status::InvalidArgument("DecisionTree: malformed node " +
                                     std::to_string(i));
    }
  }
  return std::unique_ptr<Classifier>(std::move(tree));
}

int DecisionTree::Depth() const {
  if (nodes_.empty()) return 0;
  std::function<int(int)> depth_of = [&](int id) -> int {
    if (nodes_[id].left == -1) return 0;
    return 1 + std::max(depth_of(nodes_[id].left), depth_of(nodes_[id].right));
  };
  return depth_of(0);
}

}  // namespace paws
