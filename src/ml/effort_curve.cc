#include "ml/effort_curve.h"

#include <algorithm>

namespace paws {

namespace {

// Clamped grid-segment lookup shared by every tabulated evaluation:
// returns the bracketing indices and interpolation weight for `x` (both
// indices equal at the clamped ends, t = 0). Mirrors
// PiecewiseLinear::Eval so tabulated and PWL evaluations agree.
struct GridSegment {
  size_t lo = 0;
  size_t hi = 0;
  double t = 0.0;
};

GridSegment FindSegment(const std::vector<double>& grid, double x) {
  const size_t m = grid.size();
  if (x <= grid.front()) return {0, 0, 0.0};
  if (x >= grid.back()) return {m - 1, m - 1, 0.0};
  const auto it = std::upper_bound(grid.begin(), grid.end(), x);
  const size_t hi = it - grid.begin();
  const size_t lo = hi - 1;
  return {lo, hi, (x - grid[lo]) / (grid[hi] - grid[lo])};
}

double Interp(const GridSegment& seg, const double* y) {
  if (seg.lo == seg.hi) return y[seg.lo];  // clamped at a grid end
  return y[seg.lo] + seg.t * (y[seg.hi] - y[seg.lo]);
}

}  // namespace

double EffortCurveTable::EvalProb(int cell, double effort) const {
  CheckOrDie(cell >= 0 && cell < num_cells && num_points() > 0,
             "EffortCurveTable::EvalProb out of bounds");
  return Interp(FindSegment(effort_grid, effort),
                prob.data() + static_cast<size_t>(cell) * effort_grid.size());
}

double EffortCurveTable::EvalVariance(int cell, double effort) const {
  CheckOrDie(cell >= 0 && cell < num_cells && num_points() > 0,
             "EffortCurveTable::EvalVariance out of bounds");
  return Interp(
      FindSegment(effort_grid, effort),
      variance.data() + static_cast<size_t>(cell) * effort_grid.size());
}

void EffortCurveTable::Eval(int cell, double effort, double* prob_out,
                            double* variance_out) const {
  CheckOrDie(cell >= 0 && cell < num_cells && num_points() > 0,
             "EffortCurveTable::Eval out of bounds");
  const size_t m = effort_grid.size();
  const GridSegment seg = FindSegment(effort_grid, effort);
  *prob_out = Interp(seg, prob.data() + static_cast<size_t>(cell) * m);
  *variance_out = Interp(seg, variance.data() + static_cast<size_t>(cell) * m);
}

std::vector<double> UniformEffortGrid(double lo, double hi, int segments) {
  CheckOrDie(segments >= 1, "UniformEffortGrid: need >= 1 segment");
  CheckOrDie(hi > lo, "UniformEffortGrid: hi must exceed lo");
  std::vector<double> grid(segments + 1);
  for (int i = 0; i <= segments; ++i) {
    grid[i] = lo + (hi - lo) * i / segments;
  }
  return grid;
}

EffortCurveTable ResampleEffortCurves(const EffortCurveTable& in,
                                      std::vector<double> new_grid) {
  CheckOrDie(new_grid.size() >= 2, "ResampleEffortCurves: need >= 2 points");
  for (size_t k = 1; k < new_grid.size(); ++k) {
    CheckOrDie(new_grid[k] > new_grid[k - 1],
               "ResampleEffortCurves: grid must be strictly increasing");
  }
  EffortCurveTable out;
  out.num_cells = in.num_cells;
  const int m = static_cast<int>(new_grid.size());
  out.prob.resize(static_cast<size_t>(in.num_cells) * m);
  out.variance.resize(static_cast<size_t>(in.num_cells) * m);
  for (int v = 0; v < in.num_cells; ++v) {
    for (int k = 0; k < m; ++k) {
      out.prob[static_cast<size_t>(v) * m + k] = in.EvalProb(v, new_grid[k]);
      out.variance[static_cast<size_t>(v) * m + k] =
          in.EvalVariance(v, new_grid[k]);
    }
  }
  out.effort_grid = std::move(new_grid);
  return out;
}

namespace {

constexpr uint32_t kEffortCurveSchemaVersion = 1;
constexpr uint32_t kEffortCurveSectionTag = FourCc("ECRV");

}  // namespace

void SaveEffortCurveTable(const EffortCurveTable& table, ArchiveWriter* ar) {
  ar->BeginSection(kEffortCurveSectionTag);
  ar->WriteU32(kEffortCurveSchemaVersion);
  ar->WriteDoubleVector(table.effort_grid);
  ar->WriteIntVector(table.qualified_count);
  ar->WriteI32(table.num_cells);
  ar->WriteDoubleVector(table.prob);
  ar->WriteDoubleVector(table.variance);
  ar->EndSection();
}

StatusOr<EffortCurveTable> LoadEffortCurveTable(ArchiveReader* ar) {
  PAWS_RETURN_IF_ERROR(ar->EnterSection(kEffortCurveSectionTag));
  uint32_t version = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU32(&version));
  if (version != kEffortCurveSchemaVersion) {
    return Status::InvalidArgument(
        "EffortCurveTable: unsupported schema version " +
        std::to_string(version));
  }
  EffortCurveTable table;
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&table.effort_grid));
  PAWS_RETURN_IF_ERROR(ar->ReadIntVector(&table.qualified_count));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&table.num_cells));
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&table.prob));
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&table.variance));
  PAWS_RETURN_IF_ERROR(ar->LeaveSection());
  for (size_t k = 1; k < table.effort_grid.size(); ++k) {
    if (!(table.effort_grid[k] > table.effort_grid[k - 1])) {
      return Status::InvalidArgument(
          "EffortCurveTable: effort grid not strictly increasing");
    }
  }
  const size_t expect =
      static_cast<size_t>(table.num_cells) * table.effort_grid.size();
  if (table.num_cells < 0 || table.prob.size() != expect ||
      table.variance.size() != expect ||
      (!table.qualified_count.empty() &&
       table.qualified_count.size() != table.effort_grid.size())) {
    return Status::InvalidArgument("EffortCurveTable: shape mismatch");
  }
  return table;
}

}  // namespace paws
