#include "ml/effort_curve.h"

#include <algorithm>

namespace paws {

namespace {

// Linear interpolation of one tabulated curve, clamped at the grid ends.
// Mirrors PiecewiseLinear::Eval so tabulated and PWL evaluations agree.
double InterpRow(const std::vector<double>& grid, const double* y,
                 double x) {
  const size_t m = grid.size();
  if (x <= grid.front()) return y[0];
  if (x >= grid.back()) return y[m - 1];
  const auto it = std::upper_bound(grid.begin(), grid.end(), x);
  const size_t hi = it - grid.begin();
  const size_t lo = hi - 1;
  const double t = (x - grid[lo]) / (grid[hi] - grid[lo]);
  return y[lo] + t * (y[hi] - y[lo]);
}

}  // namespace

double EffortCurveTable::EvalProb(int cell, double effort) const {
  CheckOrDie(cell >= 0 && cell < num_cells && num_points() > 0,
             "EffortCurveTable::EvalProb out of bounds");
  return InterpRow(effort_grid,
                   prob.data() + static_cast<size_t>(cell) * effort_grid.size(),
                   effort);
}

double EffortCurveTable::EvalVariance(int cell, double effort) const {
  CheckOrDie(cell >= 0 && cell < num_cells && num_points() > 0,
             "EffortCurveTable::EvalVariance out of bounds");
  return InterpRow(
      effort_grid,
      variance.data() + static_cast<size_t>(cell) * effort_grid.size(),
      effort);
}

std::vector<double> UniformEffortGrid(double lo, double hi, int segments) {
  CheckOrDie(segments >= 1, "UniformEffortGrid: need >= 1 segment");
  CheckOrDie(hi > lo, "UniformEffortGrid: hi must exceed lo");
  std::vector<double> grid(segments + 1);
  for (int i = 0; i <= segments; ++i) {
    grid[i] = lo + (hi - lo) * i / segments;
  }
  return grid;
}

EffortCurveTable ResampleEffortCurves(const EffortCurveTable& in,
                                      std::vector<double> new_grid) {
  CheckOrDie(new_grid.size() >= 2, "ResampleEffortCurves: need >= 2 points");
  for (size_t k = 1; k < new_grid.size(); ++k) {
    CheckOrDie(new_grid[k] > new_grid[k - 1],
               "ResampleEffortCurves: grid must be strictly increasing");
  }
  EffortCurveTable out;
  out.num_cells = in.num_cells;
  const int m = static_cast<int>(new_grid.size());
  out.prob.resize(static_cast<size_t>(in.num_cells) * m);
  out.variance.resize(static_cast<size_t>(in.num_cells) * m);
  for (int v = 0; v < in.num_cells; ++v) {
    for (int k = 0; k < m; ++k) {
      out.prob[static_cast<size_t>(v) * m + k] = in.EvalProb(v, new_grid[k]);
      out.variance[static_cast<size_t>(v) * m + k] =
          in.EvalVariance(v, new_grid[k]);
    }
  }
  out.effort_grid = std::move(new_grid);
  return out;
}

namespace {

constexpr uint32_t kEffortCurveSchemaVersion = 1;
constexpr uint32_t kEffortCurveSectionTag = FourCc("ECRV");

}  // namespace

void SaveEffortCurveTable(const EffortCurveTable& table, ArchiveWriter* ar) {
  ar->BeginSection(kEffortCurveSectionTag);
  ar->WriteU32(kEffortCurveSchemaVersion);
  ar->WriteDoubleVector(table.effort_grid);
  ar->WriteIntVector(table.qualified_count);
  ar->WriteI32(table.num_cells);
  ar->WriteDoubleVector(table.prob);
  ar->WriteDoubleVector(table.variance);
  ar->EndSection();
}

StatusOr<EffortCurveTable> LoadEffortCurveTable(ArchiveReader* ar) {
  PAWS_RETURN_IF_ERROR(ar->EnterSection(kEffortCurveSectionTag));
  uint32_t version = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU32(&version));
  if (version != kEffortCurveSchemaVersion) {
    return Status::InvalidArgument(
        "EffortCurveTable: unsupported schema version " +
        std::to_string(version));
  }
  EffortCurveTable table;
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&table.effort_grid));
  PAWS_RETURN_IF_ERROR(ar->ReadIntVector(&table.qualified_count));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&table.num_cells));
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&table.prob));
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&table.variance));
  PAWS_RETURN_IF_ERROR(ar->LeaveSection());
  for (size_t k = 1; k < table.effort_grid.size(); ++k) {
    if (!(table.effort_grid[k] > table.effort_grid[k - 1])) {
      return Status::InvalidArgument(
          "EffortCurveTable: effort grid not strictly increasing");
    }
  }
  const size_t expect =
      static_cast<size_t>(table.num_cells) * table.effort_grid.size();
  if (table.num_cells < 0 || table.prob.size() != expect ||
      table.variance.size() != expect ||
      (!table.qualified_count.empty() &&
       table.qualified_count.size() != table.effort_grid.size())) {
    return Status::InvalidArgument("EffortCurveTable: shape mismatch");
  }
  return table;
}

}  // namespace paws
