#ifndef PAWS_ML_COMPILED_LINEAR_H_
#define PAWS_ML_COMPILED_LINEAR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/compiled_backend.h"

namespace paws {

/// Flat weight-matrix ScoringBackend for an iWare-E ensemble whose weak
/// learners are all baggings of linear SVMs (SVB — the paper's baseline
/// learner family). Every member SVM of every threshold learner is
/// flattened into one contiguous parameter pool — per-member rows of
/// Pegasos weights, standardizer means and standard deviations, plus the
/// bias and Platt coefficients — so scoring a learner is a single GEMV
/// sweep: for each member row, one fused standardize-and-dot-product pass
/// over the block's feature rows, with no virtual dispatch per member and
/// no per-call probability buffers.
///
/// Bit-exactness contract: the member decision value accumulates
/// `w[f] * ((x[f] - mean[f]) / stddev[f])` in feature order and adds the
/// bias last — exactly LinearSvm::DecisionValueRow — and the Platt
/// sigmoid, member-order bagging accumulation and learner-order mixing
/// replay the reference arithmetic term for term, so compiled-SVB serving
/// is bit-identical to the reference path. The mixing harness is shared
/// with the compiled-DTB forest (internal::CompiledBackendBase).
class CompiledLinearEnsemble
    : public internal::CompiledBackendBase<CompiledLinearEnsemble> {
 public:
  /// Flattens `learners` (parallel to ascending `thresholds` and mixing
  /// `weights`). Returns nullptr — caller tries the next backend — unless
  /// every learner is a fitted BaggingClassifier whose members are all
  /// fitted LinearSvms of one shared feature width and the thresholds are
  /// strictly increasing (the prefix-scan precondition).
  static std::unique_ptr<CompiledLinearEnsemble> Compile(
      const std::vector<std::unique_ptr<Classifier>>& learners,
      const std::vector<double>& thresholds,
      const std::vector<double>& weights);

  const char* name() const override { return "compiled-svb"; }

  /// Total flattened member count across all learners.
  int num_members() const { return static_cast<int>(bias_.size()); }

 private:
  friend class internal::CompiledBackendBase<CompiledLinearEnsemble>;

  CompiledLinearEnsemble() = default;

  /// Scores one learner over the `count` rows selected by `idx` (see
  /// CompiledBackendBase for the exact contract): per selected row, the
  /// member-order sum of Platt-calibrated probabilities and squares in
  /// `sum`/`sum2`, then the bagging mean and clamped ensemble-spread
  /// variance in `mean`/`variance`.
  void ScoreLearner(int learner, const double* rows, int stride,
                    const int* idx, int count, double* sum, double* sum2,
                    double* mean, double* variance) const;

  /// LinearSvm::PredictBatch requires the exact trained width, so the
  /// compiled path does too (wider rows would silently drop features).
  void CheckRowWidth(int cols) const {
    CheckOrDie(cols == num_features_,
               "CompiledLinearEnsemble: feature row width mismatch");
  }

  // Per-member parameter rows, [member * num_features_ + feature]. Kept as
  // the raw fitted parameters (weights / means / stddevs separate, divide
  // performed at scoring time) so the arithmetic matches the reference
  // path bit for bit; pre-folding the standardizer into the weights would
  // change the rounding.
  std::vector<double> weight_rows_;
  std::vector<double> mean_rows_;
  std::vector<double> stddev_rows_;
  std::vector<double> bias_;     // per member
  std::vector<double> platt_a_;  // per member
  std::vector<double> platt_b_;  // per member
  // Members of learner i: [learner_member_begin_[i],
  // learner_member_begin_[i + 1]).
  std::vector<int32_t> learner_member_begin_;  // size num_learners + 1
};

}  // namespace paws

#endif  // PAWS_ML_COMPILED_LINEAR_H_
