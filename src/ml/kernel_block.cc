#include "ml/kernel_block.h"

#include <cmath>

#include "ml/exp_lane.h"

// Tiered kernels for the compiled-GP block sweep. Like simd_traversal.cc,
// each widened function carries its own `target` attribute so the file
// builds under the baseline ISA flags, and FMA is never used: a fused
// `a*b + c` rounds once where the scalar code rounds twice, which would
// break the repo-wide bit-identity contract. Spelling out separate
// mul/add/sub intrinsics is NOT enough for that — GCC lowers them to
// generic vector ops and its default -ffp-contract=fast happily fuses
// mul-then-add back into vfmadd inside the avx512f-target bodies — so
// CMakeLists builds this file with -ffp-contract=off (belt: sub-width
// work also runs through masked lanes or the noinline scalar helpers
// below, never through open-coded loops an FMA-capable caller context
// could contract).
//
// Why the big kernels are blocked: the naive column-lane loops stream the
// standardized block once per inducing point (CrossKernelSq) and the work
// block once per pivot (ForwardSubst) — ~100 KiB per pass, L2-resident,
// so both loops are bandwidth-bound and vector width alone buys almost
// nothing (measured ~1.2x). Tiling the row/pivot loop keeps that many
// accumulators in registers (or that many pivot rows hot in L1) and cuts
// the streamed traffic by the tile factor.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PAWS_KERNEL_BLOCK_X86 1
#include <immintrin.h>

#include <cstdint>
#endif

namespace paws {
namespace internal {

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define PAWS_NOINLINE __attribute__((noinline))
#else
#define PAWS_NOINLINE
#endif

// ---------------------------------------------------------------------------
// Scalar tier: the loops exactly as CompiledGpEnsemble::ScoreLearner wrote
// them before dispatch existed. Baseline x86-64 has no FMA instruction, so
// these round mul and add separately no matter the contraction mode. The
// helpers are noinline so the widened functions below may call them for
// remainders without GCC inlining them into an FMA-capable target context.

PAWS_NOINLINE void AccumSquaredDiffScalar(double a, const double* z,
                                          double* sq, int m) {
  for (int j = 0; j < m; ++j) {
    const double d = a - z[j];
    sq[j] += d * d;
  }
}

PAWS_NOINLINE void AccumScaledScalar(double g, const double* v, double* acc,
                                     int m) {
  for (int j = 0; j < m; ++j) acc[j] += g * v[j];
}

PAWS_NOINLINE void ScaleScalar(double* v, double s, int m) {
  for (int j = 0; j < m; ++j) v[j] *= s;
}

PAWS_NOINLINE void SubScaledScalar(double* v, double l, const double* p,
                                   int m) {
  for (int j = 0; j < m; ++j) v[j] -= l * p[j];
}

PAWS_NOINLINE void DivideByScalar(double* v, double s, int m) {
  for (int j = 0; j < m; ++j) v[j] /= s;
}

PAWS_NOINLINE void AccumSquareScalar(const double* v, double* acc, int m) {
  for (int j = 0; j < m; ++j) acc[j] += v[j] * v[j];
}

PAWS_NOINLINE void StandardizeTColScalar(const double* rows, int stride,
                                         const int* idx, int j0, int count,
                                         int m, int k, const double* mu,
                                         const double* sd, double* zt) {
  for (int j = j0; j < j0 + count; ++j) {
    const double* row = rows + static_cast<size_t>(idx[j]) * stride;
    for (int f = 0; f < k; ++f) {
      zt[static_cast<size_t>(f) * m + j] = (row[f] - mu[f]) / sd[f];
    }
  }
}

void StandardizeTScalar(const double* rows, int stride, const int* idx, int m,
                        int k, const double* mu, const double* sd,
                        double* zt) {
  StandardizeTColScalar(rows, stride, idx, 0, m, m, k, mu, sd, zt);
}

void CrossKernelSqScalar(const double* xt, int n, int k, const double* zt,
                         int m, double* out) {
  for (int i = 0; i < n; ++i) {
    double* row = out + static_cast<size_t>(i) * m;
    for (int j = 0; j < m; ++j) row[j] = 0.0;
    const double* xr = xt + static_cast<size_t>(i) * k;
    for (int f = 0; f < k; ++f) {
      AccumSquaredDiffScalar(xr[f], zt + static_cast<size_t>(f) * m, row, m);
    }
  }
}

void KernelTailScalar(double sv, double denom, double* w, int n, int m) {
  const size_t total = static_cast<size_t>(n) * m;
  for (size_t j = 0; j < total; ++j) w[j] = sv * std::exp(-w[j] / denom);
}

void ForwardSubstScalar(const double* chol, const double* sqrt_w, int n,
                        double* v, int m) {
  for (int i = 0; i < n; ++i) {
    double* vrow = v + static_cast<size_t>(i) * m;
    ScaleScalar(vrow, sqrt_w[i], m);
    const double* lrow = chol + static_cast<size_t>(i) * n;
    for (int p = 0; p < i; ++p) {
      SubScaledScalar(vrow, lrow[p], v + static_cast<size_t>(p) * m, m);
    }
    DivideByScalar(vrow, lrow[i], m);
  }
}

constexpr GpLaneOps kScalarOps = {
    &StandardizeTScalar, &CrossKernelSqScalar, &KernelTailScalar,
    &ForwardSubstScalar, &AccumScaledScalar,   &AccumSquareScalar,
};

#if defined(PAWS_KERNEL_BLOCK_X86)

// Lane-mask table for AVX2 maskload/maskstore tails: loading at offset
// (4 - rem) yields `rem` active lanes followed by zeros.
alignas(32) constexpr int64_t kAvx2MaskTable[8] = {-1, -1, -1, -1,
                                                   0,  0,  0,  0};

// ---------------------------------------------------------------------------
// AVX2: 4 columns per vector, 16 registers — the distance kernel tiles 8
// inducing rows (8 accumulators + the shared z vector), the substitution
// update subtracts 16 pivots per streamed pass. target("avx2") does not
// enable FMA, so even the compiler cannot fuse here; the bodies use only
// explicit mul-then-add/sub intrinsics anyway.

__attribute__((target("avx2"))) void StandardizeTAvx2(
    const double* rows, int stride, const int* idx, int m, int k,
    const double* mu, const double* sd, double* zt) {
  int j0 = 0;
  for (; j0 + 4 <= m; j0 += 4) {
    alignas(32) int64_t offs[4];
    for (int l = 0; l < 4; ++l) {
      offs[l] = static_cast<int64_t>(idx[j0 + l]) * stride;
    }
    const __m256i base =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(offs));
    for (int f = 0; f < k; ++f) {
      const __m256d x = _mm256_i64gather_pd(rows + f, base, 8);
      const __m256d z = _mm256_div_pd(
          _mm256_sub_pd(x, _mm256_set1_pd(mu[f])), _mm256_set1_pd(sd[f]));
      _mm256_storeu_pd(zt + static_cast<size_t>(f) * m + j0, z);
    }
  }
  if (j0 < m) {
    StandardizeTColScalar(rows, stride, idx, j0, m - j0, m, k, mu, sd, zt);
  }
}

__attribute__((target("avx2"))) void CrossKernelSqAvx2(const double* xt,
                                                       int n, int k,
                                                       const double* zt,
                                                       int m, double* out) {
  constexpr int kTile = 8;
  int i0 = 0;
  for (; i0 + kTile <= n; i0 += kTile) {
    for (int j0 = 0; j0 < m; j0 += 4) {
      const int rem = m - j0 < 4 ? m - j0 : 4;
      const __m256i mask = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(kAvx2MaskTable + 4 - rem));
      __m256d acc[kTile];
      for (int t = 0; t < kTile; ++t) acc[t] = _mm256_setzero_pd();
      for (int f = 0; f < k; ++f) {
        const __m256d z =
            _mm256_maskload_pd(zt + static_cast<size_t>(f) * m + j0, mask);
        for (int t = 0; t < kTile; ++t) {
          const __m256d x =
              _mm256_set1_pd(xt[static_cast<size_t>(i0 + t) * k + f]);
          const __m256d d = _mm256_sub_pd(x, z);
          acc[t] = _mm256_add_pd(acc[t], _mm256_mul_pd(d, d));
        }
      }
      for (int t = 0; t < kTile; ++t) {
        _mm256_maskstore_pd(out + static_cast<size_t>(i0 + t) * m + j0, mask,
                            acc[t]);
      }
    }
  }
  // Remainder rows: one accumulator register per column chunk.
  for (; i0 < n; ++i0) {
    const double* xr = xt + static_cast<size_t>(i0) * k;
    double* row = out + static_cast<size_t>(i0) * m;
    for (int j0 = 0; j0 < m; j0 += 4) {
      const int rem = m - j0 < 4 ? m - j0 : 4;
      const __m256i mask = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(kAvx2MaskTable + 4 - rem));
      __m256d acc = _mm256_setzero_pd();
      for (int f = 0; f < k; ++f) {
        const __m256d z =
            _mm256_maskload_pd(zt + static_cast<size_t>(f) * m + j0, mask);
        const __m256d d = _mm256_sub_pd(_mm256_set1_pd(xr[f]), z);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
      }
      _mm256_maskstore_pd(row + j0, mask, acc);
    }
  }
}

__attribute__((target("avx2"))) void ForwardSubstAvx2(const double* chol,
                                                      const double* sqrt_w,
                                                      int n, double* v,
                                                      int m) {
  constexpr int kTile = 16;
  // W^1/2 scale first — element-wise, so hoisting it off the reference
  // interleaving leaves every element's scale-subs-divide order intact.
  for (int i = 0; i < n; ++i) {
    double* vrow = v + static_cast<size_t>(i) * m;
    const __m256d s = _mm256_set1_pd(sqrt_w[i]);
    int j = 0;
    for (; j + 4 <= m; j += 4) {
      _mm256_storeu_pd(vrow + j, _mm256_mul_pd(_mm256_loadu_pd(vrow + j), s));
    }
    if (j < m) ScaleScalar(vrow + j, sqrt_w[i], m - j);
  }
  // Right-looking blocked solve: finish a tile of pivots, then subtract
  // all of them from every later row in one streamed pass — pivots stay
  // L1-resident, later rows stream once per tile instead of once per
  // pivot. Per element the subtraction order is still p-ascending (tiles
  // ascend, t ascends inside the update), and every pivot row is final
  // (divided) before any row consumes it.
  for (int p0 = 0; p0 < n; p0 += kTile) {
    const int tp = n - p0 < kTile ? n - p0 : kTile;
    for (int i = p0; i < p0 + tp; ++i) {
      double* vrow = v + static_cast<size_t>(i) * m;
      const double* lrow = chol + static_cast<size_t>(i) * n;
      for (int p = p0; p < i; ++p) {
        const __m256d l = _mm256_set1_pd(lrow[p]);
        const double* vp = v + static_cast<size_t>(p) * m;
        int j = 0;
        for (; j + 4 <= m; j += 4) {
          const __m256d t = _mm256_mul_pd(l, _mm256_loadu_pd(vp + j));
          _mm256_storeu_pd(vrow + j,
                           _mm256_sub_pd(_mm256_loadu_pd(vrow + j), t));
        }
        if (j < m) SubScaledScalar(vrow + j, lrow[p], vp + j, m - j);
      }
      const __m256d d = _mm256_set1_pd(lrow[i]);
      int j = 0;
      for (; j + 4 <= m; j += 4) {
        _mm256_storeu_pd(vrow + j,
                         _mm256_div_pd(_mm256_loadu_pd(vrow + j), d));
      }
      if (j < m) DivideByScalar(vrow + j, lrow[i], m - j);
    }
    // Streamed update, 4 later rows at a time: each pivot-row chunk is
    // loaded once and reused by all 4 accumulators (4 of the 16 ymm regs
    // hold sums, one holds the shared pivot chunk). Each element's own
    // chain still subtracts pivots in ascending order.
    int i = p0 + tp;
    for (; i + 4 <= n; i += 4) {
      for (int j0 = 0; j0 < m; j0 += 4) {
        const int rem = m - j0 < 4 ? m - j0 : 4;
        const __m256i mask = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(kAvx2MaskTable + 4 - rem));
        __m256d acc[4];
        for (int g = 0; g < 4; ++g) {
          acc[g] = _mm256_maskload_pd(
              v + static_cast<size_t>(i + g) * m + j0, mask);
        }
        for (int t = 0; t < tp; ++t) {
          const __m256d vp = _mm256_maskload_pd(
              v + static_cast<size_t>(p0 + t) * m + j0, mask);
          for (int g = 0; g < 4; ++g) {
            const __m256d l = _mm256_set1_pd(
                chol[static_cast<size_t>(i + g) * n + p0 + t]);
            acc[g] = _mm256_sub_pd(acc[g], _mm256_mul_pd(l, vp));
          }
        }
        for (int g = 0; g < 4; ++g) {
          _mm256_maskstore_pd(v + static_cast<size_t>(i + g) * m + j0, mask,
                              acc[g]);
        }
      }
    }
    for (; i < n; ++i) {
      double* vrow = v + static_cast<size_t>(i) * m;
      const double* lrow = chol + static_cast<size_t>(i) * n;
      for (int j0 = 0; j0 < m; j0 += 4) {
        const int rem = m - j0 < 4 ? m - j0 : 4;
        const __m256i mask = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(kAvx2MaskTable + 4 - rem));
        __m256d acc = _mm256_maskload_pd(vrow + j0, mask);
        for (int t = 0; t < tp; ++t) {
          const __m256d l = _mm256_set1_pd(lrow[p0 + t]);
          const __m256d vp = _mm256_maskload_pd(
              v + static_cast<size_t>(p0 + t) * m + j0, mask);
          acc = _mm256_sub_pd(acc, _mm256_mul_pd(l, vp));
        }
        _mm256_maskstore_pd(vrow + j0, mask, acc);
      }
    }
  }
}

__attribute__((target("avx2"))) void AccumScaledAvx2(double g, const double* v,
                                                     double* acc, int m) {
  const __m256d gv = _mm256_set1_pd(g);
  int j = 0;
  for (; j + 4 <= m; j += 4) {
    const __m256d t = _mm256_mul_pd(gv, _mm256_loadu_pd(v + j));
    _mm256_storeu_pd(acc + j, _mm256_add_pd(_mm256_loadu_pd(acc + j), t));
  }
  if (j < m) AccumScaledScalar(g, v + j, acc + j, m - j);
}

__attribute__((target("avx2"))) void AccumSquareAvx2(const double* v,
                                                     double* acc, int m) {
  int j = 0;
  for (; j + 4 <= m; j += 4) {
    const __m256d x = _mm256_loadu_pd(v + j);
    _mm256_storeu_pd(
        acc + j, _mm256_add_pd(_mm256_loadu_pd(acc + j), _mm256_mul_pd(x, x)));
  }
  if (j < m) AccumSquareScalar(v + j, acc + j, m - j);
}

constexpr GpLaneOps kAvx2Ops = {
    &StandardizeTAvx2, &CrossKernelSqAvx2, &KernelTailScalar,
    &ForwardSubstAvx2, &AccumScaledAvx2,   &AccumSquareAvx2,
};

// ---------------------------------------------------------------------------
// AVX-512F: 8 columns per vector, mask registers for the column tails, 32
// registers — the distance kernel tiles 16 inducing rows deep.

__attribute__((target("avx512f"))) void StandardizeTAvx512(
    const double* rows, int stride, const int* idx, int m, int k,
    const double* mu, const double* sd, double* zt) {
  for (int j0 = 0; j0 < m; j0 += 8) {
    const int rem = m - j0 < 8 ? m - j0 : 8;
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    alignas(64) int64_t offs[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (int l = 0; l < rem; ++l) {
      offs[l] = static_cast<int64_t>(idx[j0 + l]) * stride;
    }
    const __m512i base = _mm512_load_si512(offs);
    for (int f = 0; f < k; ++f) {
      const __m512d x = _mm512_mask_i64gather_pd(_mm512_setzero_pd(), mask,
                                                 base, rows + f, 8);
      const __m512d z = _mm512_div_pd(
          _mm512_sub_pd(x, _mm512_set1_pd(mu[f])), _mm512_set1_pd(sd[f]));
      _mm512_mask_storeu_pd(zt + static_cast<size_t>(f) * m + j0, mask, z);
    }
  }
}

__attribute__((target("avx512f"))) void CrossKernelSqAvx512(
    const double* xt, int n, int k, const double* zt, int m, double* out) {
  constexpr int kTile = 16;
  int i0 = 0;
  for (; i0 + kTile <= n; i0 += kTile) {
    for (int j0 = 0; j0 < m; j0 += 8) {
      const int rem = m - j0 < 8 ? m - j0 : 8;
      const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
      __m512d acc[kTile];
      for (int t = 0; t < kTile; ++t) acc[t] = _mm512_setzero_pd();
      for (int f = 0; f < k; ++f) {
        const __m512d z = _mm512_maskz_loadu_pd(
            mask, zt + static_cast<size_t>(f) * m + j0);
        for (int t = 0; t < kTile; ++t) {
          const __m512d x =
              _mm512_set1_pd(xt[static_cast<size_t>(i0 + t) * k + f]);
          const __m512d d = _mm512_sub_pd(x, z);
          acc[t] = _mm512_add_pd(acc[t], _mm512_mul_pd(d, d));
        }
      }
      for (int t = 0; t < kTile; ++t) {
        _mm512_mask_storeu_pd(out + static_cast<size_t>(i0 + t) * m + j0,
                              mask, acc[t]);
      }
    }
  }
  for (; i0 < n; ++i0) {
    const double* xr = xt + static_cast<size_t>(i0) * k;
    double* row = out + static_cast<size_t>(i0) * m;
    for (int j0 = 0; j0 < m; j0 += 8) {
      const int rem = m - j0 < 8 ? m - j0 : 8;
      const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
      __m512d acc = _mm512_setzero_pd();
      for (int f = 0; f < k; ++f) {
        const __m512d z = _mm512_maskz_loadu_pd(
            mask, zt + static_cast<size_t>(f) * m + j0);
        const __m512d d = _mm512_sub_pd(_mm512_set1_pd(xr[f]), z);
        acc = _mm512_add_pd(acc, _mm512_mul_pd(d, d));
      }
      _mm512_mask_storeu_pd(row + j0, mask, acc);
    }
  }
}

__attribute__((target("avx512f"))) void ForwardSubstAvx512(
    const double* chol, const double* sqrt_w, int n, double* v, int m) {
  constexpr int kTile = 16;
  for (int i = 0; i < n; ++i) {
    double* vrow = v + static_cast<size_t>(i) * m;
    const __m512d s = _mm512_set1_pd(sqrt_w[i]);
    for (int j0 = 0; j0 < m; j0 += 8) {
      const int rem = m - j0 < 8 ? m - j0 : 8;
      const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
      _mm512_mask_storeu_pd(
          vrow + j0, mask,
          _mm512_mul_pd(_mm512_maskz_loadu_pd(mask, vrow + j0), s));
    }
  }
  for (int p0 = 0; p0 < n; p0 += kTile) {
    const int tp = n - p0 < kTile ? n - p0 : kTile;
    for (int i = p0; i < p0 + tp; ++i) {
      double* vrow = v + static_cast<size_t>(i) * m;
      const double* lrow = chol + static_cast<size_t>(i) * n;
      for (int p = p0; p < i; ++p) {
        const __m512d l = _mm512_set1_pd(lrow[p]);
        const double* vp = v + static_cast<size_t>(p) * m;
        for (int j0 = 0; j0 < m; j0 += 8) {
          const int rem = m - j0 < 8 ? m - j0 : 8;
          const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
          const __m512d t =
              _mm512_mul_pd(l, _mm512_maskz_loadu_pd(mask, vp + j0));
          _mm512_mask_storeu_pd(
              vrow + j0, mask,
              _mm512_sub_pd(_mm512_maskz_loadu_pd(mask, vrow + j0), t));
        }
      }
      const __m512d d = _mm512_set1_pd(lrow[i]);
      for (int j0 = 0; j0 < m; j0 += 8) {
        const int rem = m - j0 < 8 ? m - j0 : 8;
        const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
        _mm512_mask_storeu_pd(
            vrow + j0, mask,
            _mm512_div_pd(_mm512_maskz_loadu_pd(mask, vrow + j0), d));
      }
    }
    // Streamed update, 8 later rows at a time: each pivot-row chunk is
    // loaded once and reused by all 8 accumulators, so the loop is no
    // longer load-port-bound. Each element's own chain still subtracts
    // pivots in ascending order.
    int i = p0 + tp;
    for (; i + 8 <= n; i += 8) {
      for (int j0 = 0; j0 < m; j0 += 8) {
        const int rem = m - j0 < 8 ? m - j0 : 8;
        const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
        __m512d acc[8];
        for (int g = 0; g < 8; ++g) {
          acc[g] = _mm512_maskz_loadu_pd(
              mask, v + static_cast<size_t>(i + g) * m + j0);
        }
        for (int t = 0; t < tp; ++t) {
          const __m512d vp = _mm512_maskz_loadu_pd(
              mask, v + static_cast<size_t>(p0 + t) * m + j0);
          for (int g = 0; g < 8; ++g) {
            const __m512d l = _mm512_set1_pd(
                chol[static_cast<size_t>(i + g) * n + p0 + t]);
            acc[g] = _mm512_sub_pd(acc[g], _mm512_mul_pd(l, vp));
          }
        }
        for (int g = 0; g < 8; ++g) {
          _mm512_mask_storeu_pd(v + static_cast<size_t>(i + g) * m + j0,
                                mask, acc[g]);
        }
      }
    }
    for (; i < n; ++i) {
      double* vrow = v + static_cast<size_t>(i) * m;
      const double* lrow = chol + static_cast<size_t>(i) * n;
      for (int j0 = 0; j0 < m; j0 += 8) {
        const int rem = m - j0 < 8 ? m - j0 : 8;
        const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
        __m512d acc = _mm512_maskz_loadu_pd(mask, vrow + j0);
        for (int t = 0; t < tp; ++t) {
          const __m512d l = _mm512_set1_pd(lrow[p0 + t]);
          const __m512d vp = _mm512_maskz_loadu_pd(
              mask, v + static_cast<size_t>(p0 + t) * m + j0);
          acc = _mm512_sub_pd(acc, _mm512_mul_pd(l, vp));
        }
        _mm512_mask_storeu_pd(vrow + j0, mask, acc);
      }
    }
  }
}

__attribute__((target("avx512f"))) void AccumScaledAvx512(double g,
                                                          const double* v,
                                                          double* acc, int m) {
  const __m512d gv = _mm512_set1_pd(g);
  int j = 0;
  for (; j + 8 <= m; j += 8) {
    const __m512d t = _mm512_mul_pd(gv, _mm512_loadu_pd(v + j));
    _mm512_storeu_pd(acc + j, _mm512_add_pd(_mm512_loadu_pd(acc + j), t));
  }
  if (j < m) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (m - j)) - 1u);
    const __m512d t = _mm512_mul_pd(gv, _mm512_maskz_loadu_pd(tail, v + j));
    const __m512d s = _mm512_maskz_loadu_pd(tail, acc + j);
    _mm512_mask_storeu_pd(acc + j, tail, _mm512_add_pd(s, t));
  }
}

__attribute__((target("avx512f"))) void AccumSquareAvx512(const double* v,
                                                          double* acc, int m) {
  int j = 0;
  for (; j + 8 <= m; j += 8) {
    const __m512d x = _mm512_loadu_pd(v + j);
    _mm512_storeu_pd(
        acc + j, _mm512_add_pd(_mm512_loadu_pd(acc + j), _mm512_mul_pd(x, x)));
  }
  if (j < m) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (m - j)) - 1u);
    const __m512d x = _mm512_maskz_loadu_pd(tail, v + j);
    const __m512d s = _mm512_maskz_loadu_pd(tail, acc + j);
    _mm512_mask_storeu_pd(acc + j, tail,
                          _mm512_add_pd(s, _mm512_mul_pd(x, x)));
  }
}

constexpr GpLaneOps kAvx512Ops = {
    &StandardizeTAvx512, &CrossKernelSqAvx512, &KernelTailScalar,
    &ForwardSubstAvx512, &AccumScaledAvx512,   &AccumSquareAvx512,
};

#endif  // PAWS_KERNEL_BLOCK_X86

#undef PAWS_NOINLINE

}  // namespace

const GpLaneOps* GetGpLaneOps(SimdTier tier) {
#if defined(PAWS_KERNEL_BLOCK_X86)
  switch (tier) {
    case SimdTier::kAvx2:
      return &kAvx2Ops;
    case SimdTier::kAvx512: {
      // The AVX-512 table optionally swaps in the vectorized exp replay
      // for the kernel tail; resolved once — the resolver locates libm's
      // coefficient table and proves bitwise identity before handing out
      // the fast tail (scalar tail stays otherwise). See exp_lane.h.
      static const GpLaneOps kAvx512Resolved = [] {
        GpLaneOps ops = kAvx512Ops;
        if (KernelTailFn tail = GetVectorKernelTail(SimdTier::kAvx512)) {
          ops.KernelTail = tail;
        }
        return ops;
      }();
      return &kAvx512Resolved;
    }
    case SimdTier::kScalar:
      return &kScalarOps;
  }
#else
  (void)tier;
#endif
  return &kScalarOps;
}

}  // namespace internal
}  // namespace paws
