#ifndef PAWS_ML_CROSS_VALIDATION_H_
#define PAWS_ML_CROSS_VALIDATION_H_

#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace paws {

/// Stratified k-fold assignment: shuffles positives and negatives
/// separately and deals them round-robin so each fold preserves the class
/// ratio (essential under 1:200 imbalance). Returns, for each fold, the
/// list of validation row indices. Every row appears in exactly one fold.
std::vector<std::vector<int>> StratifiedKFold(const std::vector<int>& labels,
                                              int num_folds, Rng* rng);

/// Out-of-fold predictions: for each fold, trains a fresh clone of `proto`
/// on the other folds and scores the held-out rows. The returned vector is
/// indexed by dataset row. Rows whose training split degenerates (single
/// class) receive the training-set base rate.
///
/// Folds train on up to `parallelism` threads. Fold assignment and each
/// fold's training Rng are drawn from `rng` serially beforehand, and every
/// fold writes only its own held-out rows, so the result is bit-identical
/// for every thread count.
StatusOr<std::vector<double>> OutOfFoldPredictions(
    const Classifier& proto, const Dataset& data, int num_folds, Rng* rng,
    const ParallelismConfig& parallelism = ParallelismConfig());

}  // namespace paws

#endif  // PAWS_ML_CROSS_VALIDATION_H_
