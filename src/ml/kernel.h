#ifndef PAWS_ML_KERNEL_H_
#define PAWS_ML_KERNEL_H_

#include <vector>

#include "util/matrix.h"

namespace paws {

/// Radial basis function (squared-exponential) kernel:
///   k(a, b) = signal_variance * exp(-|a - b|^2 / (2 * length_scale^2)).
struct RbfKernel {
  double length_scale = 1.0;
  double signal_variance = 1.0;

  double operator()(const std::vector<double>& a,
                    const std::vector<double>& b) const;

  /// k(a, b) on flat buffers of `k` doubles — the batch hot-path form; the
  /// vector overload delegates here so training and prediction share one
  /// kernel implementation.
  double Eval(const double* a, const double* b, int k) const;

  /// Gram matrix K(X, X) with `jitter` added to the diagonal for numerical
  /// stability of the Cholesky factorization.
  Matrix GramMatrix(const std::vector<std::vector<double>>& x,
                    double jitter = 1e-8) const;
};

}  // namespace paws

#endif  // PAWS_ML_KERNEL_H_
