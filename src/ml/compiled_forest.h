#ifndef PAWS_ML_COMPILED_FOREST_H_
#define PAWS_ML_COMPILED_FOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/compiled_backend.h"
#include "ml/decision_tree.h"
#include "ml/effort_curve.h"
#include "util/aligned.h"
#include "util/cpu_features.h"
#include "util/feature_matrix.h"
#include "util/thread_pool.h"

namespace paws {

/// Flat structure-of-arrays ScoringBackend for an iWare-E ensemble whose
/// weak learners are all baggings of decision trees (DTB / random forest —
/// the traffic-facing configuration for large parks). Every tree of every
/// threshold learner is flattened into one contiguous node pool laid out
/// children-adjacent (right child = left child + 1), so batch evaluation is
/// a tight loop over plain arrays: no virtual dispatch per learner, no
/// per-call Prediction buffers, and per-tree node data stays cache-hot
/// across a whole row block.
///
/// Bit-exactness contract: evaluation reproduces the reference path
/// (BaggingClassifier::PredictBatchWithVariance mixed by
/// IWareEnsemble::PredictBatch / PredictEffortCurves) bit for bit — member
/// probabilities are accumulated in member order, learner mixtures in
/// learner order, and every divide / clamp is performed exactly where the
/// reference performs it. The shared-mixing harness (qualified prefixes,
/// per-row compaction, score-once effort-curve prefix scan) lives in
/// internal::CompiledBackendBase and is shared with the compiled-SVB
/// backend; this class contributes the flattened trees and their
/// interleaved traversal.
///
/// Instances are derived state: IWareEnsemble selects its backend at the
/// end of Fit and after Load (never serialized). Ensembles whose learners
/// are not bagged trees compile to another backend or fall back to the
/// reference path.
class CompiledForest : public internal::CompiledBackendBase<CompiledForest> {
 public:
  /// Flattens `learners` (parallel to ascending `thresholds` and mixing
  /// `weights`). Returns nullptr — caller tries the next backend — unless
  /// every learner is a fitted BaggingClassifier whose members are all
  /// fitted DecisionTrees and the thresholds are strictly increasing (the
  /// prefix-scan precondition). The traversal dispatch tier is
  /// ActiveSimdTier(): the strongest gathered walk this CPU executes,
  /// clamped by the PAWS_FORCE_BACKEND override (scalar/avx2/avx512).
  static std::unique_ptr<CompiledForest> Compile(
      const std::vector<std::unique_ptr<Classifier>>& learners,
      const std::vector<double>& thresholds,
      const std::vector<double>& weights);

  /// Compile() pinned to one dispatch tier (still clamped to what this
  /// build/CPU can execute) — benchmarks and the bit-identity tests use it
  /// to compare tiers on one model.
  static std::unique_ptr<CompiledForest> CompileWithTier(
      const std::vector<std::unique_ptr<Classifier>>& learners,
      const std::vector<double>& thresholds,
      const std::vector<double>& weights, SimdTier tier);

  /// "compiled-dtb" for the scalar tier, "compiled-dtb-avx2" /
  /// "compiled-dtb-avx512" for the gathered walks — operators read the
  /// suffix off `paws_serve --stats` to confirm what a daemon dispatches.
  const char* name() const override { return name_; }

  SimdTier simd_tier() const { return tier_; }

  /// One flattened tree node, packed to 16 bytes so a visit touches a
  /// single cache line. Internal node: `feature >= 0`, `value` is the
  /// split threshold, children at `left` (<=) and `left + 1` (>). Leaf:
  /// `feature == -1`, `value` is the leaf probability.
  struct Node {
    int32_t feature = -1;
    int32_t left = 0;
    double value = 0.0;
  };

  int num_trees() const { return static_cast<int>(tree_root_.size()); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Base of the flattened node pool — 64-byte aligned so gathered lane
  /// groups and whole-line node quads never straddle cache lines (the
  /// alignment regression test reads this).
  const Node* node_pool() const { return nodes_.data(); }

 private:
  friend class internal::CompiledBackendBase<CompiledForest>;

  CompiledForest() = default;

  bool FlattenTree(const std::vector<DecisionTree::Node>& nodes);

  /// Scores one learner over the `count` rows selected by `idx` (see
  /// CompiledBackendBase for the exact contract): per selected row, the
  /// member-order sum of tree outputs and squares in `sum`/`sum2`, then
  /// the bagging mean and clamped ensemble-spread variance in
  /// `mean`/`variance`. Rows are traversed in interleaved groups with
  /// independent cursors so the per-level node loads of several rows
  /// overlap instead of serializing on one pointer-chase chain.
  void ScoreLearner(int learner, const double* rows, int stride,
                    const int* idx, int count, double* sum, double* sum2,
                    double* mean, double* variance) const;

  /// Trees may never split on trailing features, so wider rows are fine.
  void CheckRowWidth(int cols) const {
    CheckOrDie(cols >= num_features_,
               "CompiledForest: feature rows too narrow");
  }

  // One contiguous node pool for every tree, 64-byte aligned (four nodes
  // per cache line, and a gather-friendly base for the SIMD tiers). Each
  // tree's nodes are laid out breadth-first from its root: the interleaved
  // traversal advances all cursors one level at a time, so every in-flight
  // load lands inside one contiguous (and for the top levels, tiny) span
  // of the pool.
  std::vector<Node, AlignedAllocator<Node, 64>> nodes_;
  std::vector<int32_t> tree_root_;   // root node index per tree
  std::vector<int32_t> tree_depth_;  // traversal steps to reach any leaf
  // Trees of learner i: tree_root_[learner_tree_begin_[i] ..
  // learner_tree_begin_[i + 1]).
  std::vector<int32_t> learner_tree_begin_;  // size num_learners + 1
  std::vector<int32_t> learner_members_;     // bagging denominator B

  // Resolved traversal dispatch: the tier, its reported backend name, and
  // the gathered walker (nullptr on the scalar tier). Derived at Compile
  // time, never serialized.
  SimdTier tier_ = SimdTier::kScalar;
  const char* name_ = "compiled-dtb";
  void (*simd_walk_)(const Node* nodes, int root, int depth,
                     const double* rows, int stride, const int* idx,
                     int count, double* sum, double* sum2,
                     bool assign) = nullptr;
};

}  // namespace paws

#endif  // PAWS_ML_COMPILED_FOREST_H_
