#ifndef PAWS_ML_COMPILED_FOREST_H_
#define PAWS_ML_COMPILED_FOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"
#include "ml/effort_curve.h"
#include "util/feature_matrix.h"
#include "util/thread_pool.h"

namespace paws {

/// Flat structure-of-arrays serving layer for an iWare-E ensemble whose
/// weak learners are all baggings of decision trees (DTB / random forest —
/// the traffic-facing configuration for large parks). Every tree of every
/// threshold learner is flattened into one contiguous node pool laid out
/// children-adjacent (right child = left child + 1), so batch evaluation is
/// a tight loop over plain arrays: no virtual dispatch per learner, no
/// per-call Prediction buffers, and per-tree node data stays cache-hot
/// across a whole row block.
///
/// Bit-exactness contract: evaluation reproduces the reference path
/// (BaggingClassifier::PredictBatchWithVariance mixed by
/// IWareEnsemble::PredictBatch / PredictEffortCurves) bit for bit — member
/// probabilities are accumulated in member order, learner mixtures in
/// learner order, and every divide / clamp is performed exactly where the
/// reference performs it. Effort-curve tables additionally exploit that the
/// qualified set at any effort is a prefix of the threshold-sorted learner
/// list: each learner is scored once per cell and every grid point is
/// assembled by extending a running weight prefix scan, turning the O(E*K)
/// re-mixing sweep into O(K) scoring plus O(E + K) mixing.
///
/// Instances are derived state: IWareEnsemble rebuilds its compiled forest
/// at the end of Fit and after Load (never serialized). Ensembles whose
/// learners are not bagged trees (SVB, GPB) simply have no compiled forest
/// and serve through the reference path.
class CompiledForest {
 public:
  /// Flattens `learners` (parallel to ascending `thresholds` and mixing
  /// `weights`). Returns nullptr — caller falls back to the reference
  /// path — unless every learner is a fitted BaggingClassifier whose
  /// members are all fitted DecisionTrees and the thresholds are strictly
  /// increasing (the prefix-scan precondition).
  static std::unique_ptr<CompiledForest> Compile(
      const std::vector<std::unique_ptr<Classifier>>& learners,
      const std::vector<double>& thresholds,
      const std::vector<double>& weights);

  /// Batch prediction under one shared hypothetical effort. Bit-identical
  /// to the reference IWareEnsemble::PredictBatch(x, effort, out).
  void PredictBatch(const FeatureMatrixView& x, double effort,
                    const ParallelismConfig& parallelism,
                    std::vector<Prediction>* out) const;

  /// Batch prediction with per-row efforts. Bit-identical to the reference
  /// IWareEnsemble::PredictBatch(x, efforts, out).
  void PredictBatch(const FeatureMatrixView& x,
                    const std::vector<double>& efforts,
                    const ParallelismConfig& parallelism,
                    std::vector<Prediction>* out) const;

  /// Fills `table->num_cells`, `table->prob` and `table->variance` for the
  /// given strictly increasing grid (the caller owns `effort_grid` and
  /// `qualified_count`). Bit-identical to the reference
  /// IWareEnsemble::PredictEffortCurves via the score-once prefix scan.
  void FillEffortCurves(const FeatureMatrixView& x,
                        const std::vector<double>& effort_grid,
                        const ParallelismConfig& parallelism,
                        EffortCurveTable* table) const;

  /// One flattened tree node, packed to 16 bytes so a visit touches a
  /// single cache line. Internal node: `feature >= 0`, `value` is the
  /// split threshold, children at `left` (<=) and `left + 1` (>). Leaf:
  /// `feature == -1`, `value` is the leaf probability.
  struct Node {
    int32_t feature = -1;
    int32_t left = 0;
    double value = 0.0;
  };

  int num_learners() const {
    return static_cast<int>(learner_tree_begin_.size()) - 1;
  }
  int num_trees() const { return static_cast<int>(tree_root_.size()); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  /// Widest feature index any tree splits on, plus one — the minimum row
  /// width accepted by the predict calls.
  int num_features() const { return num_features_; }

 private:
  CompiledForest() = default;

  bool FlattenTree(const std::vector<DecisionTree::Node>& nodes);

  int NumQualified(double effort) const;

  /// Scores one learner over the `count` rows selected by `idx` (indices
  /// into the row-major block at `rows` with stride `stride`): per selected
  /// row, the member-order sum of tree outputs and squares in `sum`/`sum2`
  /// (caller-zeroed, length `count`), then the bagging mean and clamped
  /// ensemble-spread variance in `mean`/`variance` — exactly
  /// BaggingClassifier::PredictBatchWithVariance. Rows are traversed in
  /// interleaved groups with independent cursors so the per-level node
  /// loads of several rows overlap instead of serializing on one
  /// pointer-chase chain.
  void ScoreLearner(int learner, const double* rows, int stride,
                    const int* idx, int count, double* sum, double* sum2,
                    double* mean, double* variance) const;

  // One contiguous node pool for every tree. Each tree's nodes are laid
  // out breadth-first from its root: the interleaved traversal advances
  // all cursors one level at a time, so every in-flight load lands inside
  // one contiguous (and for the top levels, tiny) span of the pool.
  std::vector<Node> nodes_;
  std::vector<int32_t> tree_root_;   // root node index per tree
  std::vector<int32_t> tree_depth_;  // traversal steps to reach any leaf
  // Trees of learner i: tree_root_[learner_tree_begin_[i] ..
  // learner_tree_begin_[i + 1]).
  std::vector<int32_t> learner_tree_begin_;  // size num_learners + 1
  std::vector<int32_t> learner_members_;     // bagging denominator B
  std::vector<double> thresholds_;           // ascending effort thresholds
  std::vector<double> weights_;              // mixing weights
  int num_features_ = 0;
};

}  // namespace paws

#endif  // PAWS_ML_COMPILED_FOREST_H_
