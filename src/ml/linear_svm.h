#ifndef PAWS_ML_LINEAR_SVM_H_
#define PAWS_ML_LINEAR_SVM_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace paws {

/// Linear SVM trained with Pegasos (stochastic sub-gradient on the hinge
/// loss), with probabilities calibrated by Platt scaling on the training
/// margins. Features are standardized internally. This is the paper's
/// weakest weak learner — SVB rows in Table II sit near 0.5 AUC on the
/// hardest datasets — and is included as the faithful baseline.
struct LinearSvmConfig {
  double lambda = 1e-3;  // L2 regularization strength
  int epochs = 20;       // passes over the data
  int platt_iterations = 50;
};

void SaveLinearSvmConfig(const LinearSvmConfig& config, ArchiveWriter* ar);
StatusOr<LinearSvmConfig> LoadLinearSvmConfig(ArchiveReader* ar);

class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(LinearSvmConfig config = {}) : config_(config) {}

  Status Fit(const Dataset& data, Rng* rng) override;
  void PredictBatch(const FeatureMatrixView& x,
                    std::vector<double>* out_probs) const override;
  std::unique_ptr<Classifier> CloneUntrained() const override;

  static constexpr uint32_t kArchiveTag = FourCc("LSVM");
  uint32_t ArchiveTag() const override { return kArchiveTag; }
  void Save(ArchiveWriter* ar) const override;
  static StatusOr<std::unique_ptr<Classifier>> Load(ArchiveReader* ar);

  /// Raw decision value w.x + b on standardized features.
  double DecisionValue(const std::vector<double>& x) const;

  /// Fitted-parameter access for the compiled-SVB serving backend, which
  /// flattens these into one weight matrix (see ml/compiled_linear.h).
  bool fitted() const { return fitted_; }
  const Standardizer& standardizer() const { return standardizer_; }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  double platt_a() const { return platt_a_; }
  double platt_b() const { return platt_b_; }

 private:
  double DecisionValueRow(const double* x) const;

  LinearSvmConfig config_;
  Standardizer standardizer_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  // Platt scaling parameters: p = sigmoid(-(a*f + b)).
  double platt_a_ = -1.0;
  double platt_b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace paws

#endif  // PAWS_ML_LINEAR_SVM_H_
