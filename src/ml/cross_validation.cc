#include "ml/cross_validation.h"

namespace paws {

std::vector<std::vector<int>> StratifiedKFold(const std::vector<int>& labels,
                                              int num_folds, Rng* rng) {
  CheckOrDie(num_folds >= 2, "StratifiedKFold requires >= 2 folds");
  CheckOrDie(rng != nullptr, "StratifiedKFold requires an Rng");
  std::vector<int> pos, neg;
  for (size_t i = 0; i < labels.size(); ++i) {
    (labels[i] == 1 ? pos : neg).push_back(static_cast<int>(i));
  }
  auto shuffle = [&](std::vector<int>* v) {
    const std::vector<int> perm = rng->Permutation(static_cast<int>(v->size()));
    std::vector<int> out(v->size());
    for (size_t i = 0; i < v->size(); ++i) out[i] = (*v)[perm[i]];
    *v = std::move(out);
  };
  shuffle(&pos);
  shuffle(&neg);
  std::vector<std::vector<int>> folds(num_folds);
  int next = 0;
  for (int i : pos) folds[next++ % num_folds].push_back(i);
  for (int i : neg) folds[next++ % num_folds].push_back(i);
  return folds;
}

StatusOr<std::vector<double>> OutOfFoldPredictions(
    const Classifier& proto, const Dataset& data, int num_folds, Rng* rng,
    const ParallelismConfig& parallelism) {
  if (data.size() < num_folds) {
    return Status::InvalidArgument("OutOfFoldPredictions: too few rows");
  }
  const std::vector<std::vector<int>> folds =
      StratifiedKFold(data.labels(), num_folds, rng);
  // Fork one training Rng per fold serially so fold training below can run
  // in any order (and on any number of threads) without changing results.
  std::vector<Rng> fold_rngs;
  fold_rngs.reserve(num_folds);
  for (int f = 0; f < num_folds; ++f) fold_rngs.push_back(rng->Fork());
  std::vector<double> preds(data.size(), 0.0);
  std::vector<Status> statuses(num_folds, Status::OK());
  ParallelFor(parallelism, 0, num_folds, /*grain=*/1, [&](std::int64_t lo,
                                                          std::int64_t hi) {
    for (std::int64_t f = lo; f < hi; ++f) {
      std::vector<int> train_rows;
      for (int g = 0; g < num_folds; ++g) {
        if (g == f) continue;
        train_rows.insert(train_rows.end(), folds[g].begin(), folds[g].end());
      }
      const Dataset train = data.Subset(train_rows);
      const double base_rate = train.PositiveFraction();
      const int pos = train.CountPositives();
      if (pos == 0 || pos == train.size()) {
        // Each fold writes only its own held-out rows, so these stores are
        // disjoint across threads.
        for (int i : folds[f]) preds[i] = base_rate;
        continue;
      }
      auto model = proto.CloneUntrained();
      statuses[f] = model->Fit(train, &fold_rngs[f]);
      if (!statuses[f].ok()) continue;
      // Gather the held-out rows and score them in one batch.
      std::vector<double> gathered;
      std::vector<double> fold_preds;
      model->PredictBatch(
          GatherRows(data.FeaturesView(), folds[f], &gathered), &fold_preds);
      for (size_t j = 0; j < folds[f].size(); ++j) {
        preds[folds[f][j]] = fold_preds[j];
      }
    }
  });
  PAWS_RETURN_IF_ERROR(FirstError(statuses));
  return preds;
}

}  // namespace paws
