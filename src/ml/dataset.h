#ifndef PAWS_ML_DATASET_H_
#define PAWS_ML_DATASET_H_

#include <vector>

#include "util/archive.h"
#include "util/feature_matrix.h"
#include "util/status.h"

namespace paws {

/// A supervised dataset for the poaching-prediction task. Each row is one
/// (time step, cell) data point: feature vector x, binary label y (1 if
/// illegal activity was detected), and the *current* patrol effort spent on
/// the cell during that time step. The effort channel is not a feature
/// (rangers cannot know future effort when predicting); it drives the
/// iWare-E negative-label filtering and qualification logic.
class Dataset {
 public:
  explicit Dataset(int num_features) : num_features_(num_features) {
    CheckOrDie(num_features > 0, "Dataset requires num_features > 0");
  }

  int num_features() const { return num_features_; }
  int size() const { return static_cast<int>(y_.size()); }
  bool empty() const { return y_.empty(); }

  /// Appends a row. `time_step` and `cell_id` are optional provenance used
  /// by dataset builders and evaluation (-1 when not applicable).
  void AddRow(const std::vector<double>& x, int y, double effort,
              int time_step = -1, int cell_id = -1);

  /// Pointer to the i-th feature vector (num_features() doubles).
  const double* Row(int i) const;
  std::vector<double> RowVector(int i) const;

  /// Zero-copy view of all feature rows for batch prediction. Valid until
  /// the next AddRow (the backing buffer may reallocate).
  FeatureMatrixView FeaturesView() const {
    return FeatureMatrixView(x_.data(), size(), num_features_);
  }

  int label(int i) const { return y_[i]; }
  double effort(int i) const { return effort_[i]; }
  int time_step(int i) const { return time_step_[i]; }
  int cell_id(int i) const { return cell_id_[i]; }

  const std::vector<int>& labels() const { return y_; }
  const std::vector<double>& efforts() const { return effort_; }

  int CountPositives() const;
  double PositiveFraction() const;

  /// New dataset containing the given rows (in order, duplicates allowed —
  /// this is how bootstrap resamples are expressed).
  Dataset Subset(const std::vector<int>& indices) const;

  /// iWare-E filtering: keeps ALL positive rows and only those negative rows
  /// whose patrol effort exceeds `theta`. (Paper Sec. IV: negatives recorded
  /// under low effort are unreliable; positives are always reliable.)
  Dataset FilterNegativesBelowEffort(double theta) const;

  /// Indices of rows whose time step lies in [t_begin, t_end).
  std::vector<int> RowsInTimeRange(int t_begin, int t_end) const;

  /// The q-th percentile (q in [0,100]) of the effort channel.
  double EffortPercentile(double q) const;

 private:
  int num_features_;
  std::vector<double> x_;  // flattened row-major
  std::vector<int> y_;
  std::vector<double> effort_;
  std::vector<int> time_step_;
  std::vector<int> cell_id_;
};

/// Per-feature affine standardization (z-scoring) fit on a training set and
/// applied to any vector. Constant features map to 0.
class Standardizer {
 public:
  Standardizer() = default;

  /// Computes per-feature mean and standard deviation from `data`.
  static Standardizer Fit(const Dataset& data);

  /// Standardizes a feature vector in place.
  void Apply(std::vector<double>* x) const;
  std::vector<double> Transform(const std::vector<double>& x) const;

  int num_features() const { return static_cast<int>(mean_.size()); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

  /// Bit-exact serialization of the fitted moments.
  void Save(ArchiveWriter* ar) const;
  static StatusOr<Standardizer> Load(ArchiveReader* ar);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace paws

#endif  // PAWS_ML_DATASET_H_
