#ifndef PAWS_ML_DECISION_TREE_H_
#define PAWS_ML_DECISION_TREE_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace paws {

/// CART configuration.
struct DecisionTreeConfig {
  int max_depth = 10;
  int min_samples_split = 4;
  int min_samples_leaf = 2;
  /// Number of features considered per split; 0 means all (plain CART).
  /// Bagged trees use a random subset, making the ensemble a random forest.
  int max_features = 0;
};

void SaveDecisionTreeConfig(const DecisionTreeConfig& config,
                            ArchiveWriter* ar);
StatusOr<DecisionTreeConfig> LoadDecisionTreeConfig(ArchiveReader* ar);

/// Binary CART decision tree with Gini impurity splits. Leaf probabilities
/// are Laplace-smoothed positive fractions, (n_pos + 1) / (n + 2), so pure
/// leaves never emit exactly 0 or 1.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {}) : config_(config) {}

  Status Fit(const Dataset& data, Rng* rng) override;
  void PredictBatch(const FeatureMatrixView& x,
                    std::vector<double>* out_probs) const override;
  std::unique_ptr<Classifier> CloneUntrained() const override;

  static constexpr uint32_t kArchiveTag = FourCc("TREE");
  uint32_t ArchiveTag() const override { return kArchiveTag; }
  void Save(ArchiveWriter* ar) const override;
  static StatusOr<std::unique_ptr<Classifier>> Load(ArchiveReader* ar);

  /// Number of nodes in the fitted tree (0 before Fit).
  int NodeCount() const { return static_cast<int>(nodes_.size()); }

  /// Depth of the fitted tree (0 for a single leaf).
  int Depth() const;

  struct Node {
    // Internal node: feature/threshold and children; leaf: prob, left == -1.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double prob = 0.5;
  };

  /// Read-only view of the fitted node pool (node 0 is the root; children
  /// always come after their parent). CompiledForest flattens trees through
  /// this without re-walking the prediction API.
  const std::vector<Node>& nodes() const { return nodes_; }

 private:

  int BuildNode(const Dataset& data, std::vector<int>* indices, int begin,
                int end, int depth, Rng* rng);
  double PredictRow(const double* x, int width) const;

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace paws

#endif  // PAWS_ML_DECISION_TREE_H_
