#ifndef PAWS_ML_GAUSSIAN_PROCESS_H_
#define PAWS_ML_GAUSSIAN_PROCESS_H_

#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/kernel.h"
#include "util/matrix.h"

namespace paws {

/// Gaussian-process binary classifier with a logistic likelihood, fitted by
/// the Laplace approximation (Rasmussen & Williams 2006, Algorithms 3.1 and
/// 3.2). This is the paper's key weak learner: it attaches an intrinsic
/// predictive variance to each prediction, which the planner later exploits
/// for robustness (Sec. IV, Eq. 1).
///
/// Exact GP inference is cubic in the number of training points, so Fit
/// subsamples at most `max_points` rows (keeping all positives first —
/// matching the library's treatment of unreliable negatives).
struct GaussianProcessConfig {
  RbfKernel kernel{/*length_scale=*/1.0, /*signal_variance=*/1.0};
  /// If true (default) the kernel length scale is multiplied by
  /// sqrt(num_features) at fit time. Standardized independent feature
  /// vectors sit at expected squared distance 2k, so a dimension-blind
  /// length scale would make the kernel vanish in high dimensions.
  bool scale_length_with_dim = true;
  int max_points = 250;
  int max_newton_iterations = 30;
  double newton_tolerance = 1e-6;
};

void SaveGaussianProcessConfig(const GaussianProcessConfig& config,
                               ArchiveWriter* ar);
StatusOr<GaussianProcessConfig> LoadGaussianProcessConfig(ArchiveReader* ar);

class GaussianProcessClassifier : public Classifier {
 public:
  explicit GaussianProcessClassifier(GaussianProcessConfig config = {})
      : config_(config) {}

  Status Fit(const Dataset& data, Rng* rng) override;
  void PredictBatch(const FeatureMatrixView& x,
                    std::vector<double>* out_probs) const override;

  /// Averaged predictive probability plus the *latent* predictive variance
  /// Var[f_*] per row — the paper's per-prediction uncertainty score. The
  /// batch path amortizes the kernel solves across rows: cross-covariances
  /// are assembled as an (inducing x rows) block and the triangular solve
  /// L V = W^1/2 K_* runs over all columns at once, turning the
  /// dependency-chained per-row substitution into vectorizable row sweeps.
  /// Per column the arithmetic order is unchanged, so batch output is
  /// bit-identical to one-row calls.
  void PredictBatchWithVariance(const FeatureMatrixView& x,
                                std::vector<Prediction>* out) const override;
  bool ProvidesVariance() const override { return true; }
  std::unique_ptr<Classifier> CloneUntrained() const override;

  /// Serializes the full posterior cache — inducing inputs, likelihood
  /// gradient at the mode, W^1/2 and the Cholesky factor of B — so a
  /// loaded GP predicts bit-identically without re-running Newton.
  static constexpr uint32_t kArchiveTag = FourCc("GPCL");
  uint32_t ArchiveTag() const override { return kArchiveTag; }
  void Save(ArchiveWriter* ar) const override;
  static StatusOr<std::unique_ptr<Classifier>> Load(ArchiveReader* ar);

  int num_inducing_points() const { return static_cast<int>(x_train_.size()); }

  /// Read-only views of the fitted posterior cache (inducing inputs,
  /// likelihood gradient at the mode, W^1/2, the Cholesky factor of B, the
  /// effective kernel and the standardizer). The compiled-GP scoring
  /// backend flattens these into contiguous blocks at selection time; the
  /// arithmetic it replays over them is PredictBatchWithVariance's, term
  /// for term.
  bool fitted() const { return fitted_; }
  const RbfKernel& effective_kernel() const { return kernel_; }
  const Standardizer& standardizer() const { return standardizer_; }
  const std::vector<std::vector<double>>& inducing_inputs() const {
    return x_train_;
  }
  const std::vector<double>& grad_log_lik() const { return grad_log_lik_; }
  const std::vector<double>& sqrt_w() const { return sqrt_w_; }
  const Matrix& chol_b() const { return chol_b_; }

 private:

  GaussianProcessConfig config_;
  RbfKernel kernel_;  // effective kernel (length scale resolved at fit time)
  Standardizer standardizer_;
  std::vector<std::vector<double>> x_train_;  // standardized inducing inputs
  std::vector<double> grad_log_lik_;          // d log p(y|f) at the mode
  std::vector<double> sqrt_w_;                // W^{1/2} diagonal
  Matrix chol_b_;                             // L with B = I + W^1/2 K W^1/2
  bool fitted_ = false;
};

}  // namespace paws

#endif  // PAWS_ML_GAUSSIAN_PROCESS_H_
