#ifndef PAWS_ML_SIMD_TRAVERSAL_H_
#define PAWS_ML_SIMD_TRAVERSAL_H_

#include "ml/compiled_forest.h"
#include "util/cpu_features.h"

namespace paws {
namespace internal {

/// Walks one flattened tree over the `count` rows selected by `idx`
/// (indices into the row-major block at `rows` with stride `stride`),
/// accumulating each row's leaf value and its square into `sum`/`sum2` —
/// or assigning them when `assign` is set (the first tree of a learner).
/// Drop-in replacement for CompiledForest's scalar WalkTree: identical
/// NaN routing (`!(x <= value)` sends NaN right, exactly the reference
/// DecisionTree::PredictRow ternary), identical leaf parking, identical
/// per-row accumulation arithmetic — so outputs are bit-identical; only
/// the number of rows in flight per lane group differs.
using SimdWalkTreeFn = void (*)(const CompiledForest::Node* nodes, int root,
                                int depth, const double* rows, int stride,
                                const int* idx, int count, double* sum,
                                double* sum2, bool assign);

/// The gathered walker for `tier`, or nullptr when `tier` is kScalar or
/// this build cannot emit it (non-x86, or a toolchain without target
/// attributes) — the caller keeps its scalar traversal. The caller is
/// responsible for only requesting tiers the hardware executes
/// (ActiveSimdTier / DetectSimdTier already clamp).
SimdWalkTreeFn GetSimdWalker(SimdTier tier);

}  // namespace internal
}  // namespace paws

#endif  // PAWS_ML_SIMD_TRAVERSAL_H_
