#include "geo/grid.h"

#include <cmath>

namespace paws {

std::vector<Cell> Neighbors4(const Grid2D<double>& grid, const Cell& c) {
  static const int kDx[4] = {1, -1, 0, 0};
  static const int kDy[4] = {0, 0, 1, -1};
  std::vector<Cell> out;
  out.reserve(4);
  for (int d = 0; d < 4; ++d) {
    const Cell n{c.x + kDx[d], c.y + kDy[d]};
    if (grid.InBounds(n)) out.push_back(n);
  }
  return out;
}

double CellDistance(const Cell& a, const Cell& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace paws
