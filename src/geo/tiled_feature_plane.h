#ifndef PAWS_GEO_TILED_FEATURE_PLANE_H_
#define PAWS_GEO_TILED_FEATURE_PLANE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "geo/park.h"
#include "util/aligned.h"
#include "util/feature_matrix.h"

namespace paws {

/// Fixed-size spatial tiling of a park grid: square blocks of
/// `tile_size` x `tile_size` grid cells, indexed row-major over the block
/// grid. A tile's member cells are the in-park (dense) cells inside its
/// rectangle, enumerated in grid row-major order — the same order the
/// whole-park dense id assignment uses, so tile-by-tile traversal visits
/// every dense cell exactly once and a per-tile result scatters back onto
/// dense ids without reordering.
struct TileGeometry {
  int tile_size = 0;
  int tiles_x = 0;
  int tiles_y = 0;

  static TileGeometry For(int grid_width, int grid_height, int tile_size);

  int num_tiles() const { return tiles_x * tiles_y; }
  /// Grid-cell rectangle [x0, x1) x [y0, y1) of tile `tile_id`. Edge tiles
  /// are ragged: their rectangle is clipped to the grid.
  void TileRect(int tile_id, int grid_width, int grid_height, int* x0,
                int* y0, int* x1, int* y1) const;
  /// Tile id containing grid cell (x, y).
  int TileOf(int x, int y) const {
    return (y / tile_size) * tiles_x + (x / tile_size);
  }
};

struct TiledPlaneOptions {
  /// Grid cells per tile side. 64 x 64 cells x ~13 row doubles is ~400 KiB
  /// per resident tile — big enough to amortize scoring dispatch, small
  /// enough that a few dozen tiles fit any budget.
  int tile_size = 64;
  /// Byte budget for materialized tile rows; least-recently-used tiles are
  /// evicted past it. 0 = unbounded (every touched tile stays resident —
  /// the small-park default, equivalent to an eager plane after one sweep).
  size_t pool_budget_bytes = 0;
};

/// Cumulative tile-pool counters (monotone except resident_*, which report
/// the current pool contents).
struct TilePoolStats {
  uint64_t resident_tiles = 0;
  uint64_t resident_bytes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// The tiled counterpart of FeaturePlane: feature rows are materialized
/// per tile on demand into a bounded, LRU-evicted pool instead of all at
/// once, so the feature-row layer's memory is O(pool budget), not
/// O(park cells). Each materialized row is byte-identical to the row
/// FeaturePlane::BuildRows assembles for the same cell and coverage layer
/// — tiling changes residency, never bits.
///
/// Row storage is 64-byte-aligned (AlignedAllocator) so the SIMD scoring
/// backends' gathered walks read tile rows exactly as they read an eager
/// plane's.
///
/// Invalidation contract: UpdateLaggedEffort diffs the old and new
/// coverage layers and touches only the tiles whose cells changed — each
/// dirty tile's version is bumped (to the new global coverage_version())
/// and its resident rows are dropped from the pool; clean tiles keep their
/// version AND their residency, so a spatially local coverage update costs
/// O(dirty tiles), and cache layers above can key served tiles on
/// tile_coverage_version(t) to keep untouched tiles warm across updates.
/// Dirty tiles are evicted rather than patched in place because evicted
/// tiles may still be referenced by in-flight readers (shared_ptr) — a
/// reader always sees one internally consistent coverage layer.
///
/// Thread safety: any number of threads may call the const accessors and
/// GetTile concurrently (the pool is internally locked; materialization
/// runs outside the lock, so two racing misses both build bit-identical
/// rows and the second insert just refreshes the entry).
/// UpdateLaggedEffort requires external exclusion against readers — the
/// same writer contract ParkService enforces with its per-park
/// shared_mutex.
class TiledFeaturePlane {
 public:
  /// One materialized tile. `cell_ids` are the dense ids of the tile's
  /// in-park cells in grid row-major order; `rows` is the row-major
  /// [cell_ids.size() x row_width] feature block for them. Handed out as
  /// shared_ptr<const Tile> so pool eviction never invalidates a reader.
  struct Tile {
    int tile_id = 0;
    uint64_t coverage_version = 0;
    std::vector<int> cell_ids;
    std::vector<double, AlignedAllocator<double, 64>> rows;

    size_t bytes() const {
      return sizeof(Tile) + cell_ids.capacity() * sizeof(int) +
             rows.capacity() * sizeof(double);
    }
    FeatureMatrixView View(int row_width) const {
      return FeatureMatrixView(rows.data(),
                               static_cast<int>(cell_ids.size()), row_width);
    }
  };

  /// `lagged_effort` is the previous step's per-dense-cell patrol
  /// coverage; empty = zero coverage everywhere (FeaturePlane semantics).
  /// The park is NOT retained — every materializing call takes it again,
  /// and the caller must always pass the park this plane was built for
  /// (geometry and feature count are validated).
  TiledFeaturePlane(const Park& park, std::vector<double> lagged_effort,
                    TiledPlaneOptions options = {});

  int num_cells() const { return num_cells_; }
  /// park.num_features() + 1: the trailing column is the lagged coverage.
  int row_width() const { return row_width_; }
  const TileGeometry& geometry() const { return geometry_; }
  int num_tiles() const { return geometry_.num_tiles(); }
  const TiledPlaneOptions& options() const { return options_; }

  const std::vector<double>& lagged_effort() const { return lagged_effort_; }

  /// Monotone counter bumped by every UpdateLaggedEffort.
  uint64_t coverage_version() const { return coverage_version_; }
  /// The coverage version as of the last update that touched tile `t` —
  /// the cache-key component that keeps untouched tiles' served results
  /// valid across partial coverage updates.
  uint64_t tile_coverage_version(int tile_id) const;

  /// The tile's materialized rows, from the pool when resident, built
  /// from the park's rasters otherwise (and inserted, evicting LRU tiles
  /// past the byte budget). Never returns null.
  std::shared_ptr<const Tile> GetTile(const Park& park, int tile_id) const;

  /// Dense ids of the tile's in-park cells (grid row-major), without
  /// materializing rows. Appends into `*out` (cleared first).
  void TileCellIds(const Park& park, int tile_id,
                   std::vector<int>* out) const;

  /// Replaces the lagged-coverage layer; see the invalidation contract
  /// above. Size must match num_cells() (or be empty for all-zero).
  void UpdateLaggedEffort(const Park& park,
                          std::vector<double> lagged_effort);

  /// Whole-park compatibility path: streams every tile through GetTile
  /// and concatenates the rows in dense-id order. Bit-identical to
  /// FeaturePlane::BuildRows over all cells (tests enforce it). Intended
  /// for parity checks and small-park callers — the output is O(cells) by
  /// definition.
  std::vector<double> BuildAllRows(const Park& park) const;

  /// Packs the given cells' rows into `*buf` and returns a view over it —
  /// the subset gather behind the curve/planning paths. Rows are
  /// assembled straight from the park's rasters (no tile
  /// materialization), byte-identical to FeaturePlane::GatherCells.
  FeatureMatrixView GatherCells(const Park& park,
                                const std::vector<int>& cell_ids,
                                std::vector<double>* buf) const;

  TilePoolStats pool_stats() const;

 private:
  /// Builds the tile's rows from the park rasters (no locks held).
  std::shared_ptr<Tile> Materialize(const Park& park, int tile_id) const;
  /// Drops `tile_id` from the pool if resident (pool_mu_ must be held).
  void EvictLocked(int tile_id) const;
  /// Evicts LRU tiles until the pool fits the budget (pool_mu_ held).
  void ShrinkToBudgetLocked() const;

  int num_cells_ = 0;
  int row_width_ = 0;
  int grid_width_ = 0;
  int grid_height_ = 0;
  TileGeometry geometry_;
  TiledPlaneOptions options_;
  std::vector<double> lagged_effort_;
  uint64_t coverage_version_ = 0;
  std::vector<uint64_t> tile_versions_;

  /// LRU pool of materialized tiles, byte-budgeted. list front = most
  /// recently used; the map indexes list nodes by tile id.
  mutable std::mutex pool_mu_;
  mutable std::list<std::shared_ptr<const Tile>> pool_lru_;
  mutable std::unordered_map<
      int, std::list<std::shared_ptr<const Tile>>::iterator>
      pool_index_;
  mutable size_t pool_bytes_ = 0;
  mutable uint64_t pool_hits_ = 0;
  mutable uint64_t pool_misses_ = 0;
  mutable uint64_t pool_evictions_ = 0;
};

}  // namespace paws

#endif  // PAWS_GEO_TILED_FEATURE_PLANE_H_
