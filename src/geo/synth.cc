#include "geo/synth.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geo/noise.h"
#include "geo/raster_ops.h"
#include "util/rng.h"

namespace paws {

namespace {

// Builds the park outline: an ellipse (circular or elongated) whose radius
// is modulated by low-frequency noise, mimicking irregular park boundaries.
GridB MakeMask(const SynthParkConfig& cfg, Rng* rng) {
  GridB mask(cfg.width, cfg.height, false);
  const double cx = 0.5 * (cfg.width - 1);
  const double cy = 0.5 * (cfg.height - 1);
  // Elongated parks stretch along x (QENP is "long").
  const double rx =
      cfg.shape == ParkShape::kElongated ? 0.48 * cfg.width : 0.44 * cfg.width;
  const double ry = cfg.shape == ParkShape::kElongated ? 0.30 * cfg.height
                                                       : 0.44 * cfg.height;
  const uint64_t noise_seed = rng->NextUint64();
  for (int y = 0; y < cfg.height; ++y) {
    for (int x = 0; x < cfg.width; ++x) {
      const double nx = (x - cx) / rx;
      const double ny = (y - cy) / ry;
      const double r = std::sqrt(nx * nx + ny * ny);
      const double wobble =
          cfg.boundary_noise *
          (ValueNoise2D(x * 0.07, y * 0.07, noise_seed) - 0.5) * 2.0;
      if (r <= 1.0 + wobble) mask.At(x, y) = true;
    }
  }
  // Keep only the largest connected component so the patrol graph is
  // connected.
  GridI comp(cfg.width, cfg.height, -1);
  int best_comp = -1, best_size = 0, num_comp = 0;
  for (int i = 0; i < mask.size(); ++i) {
    if (!mask.AtIndex(i) || comp.AtIndex(i) != -1) continue;
    // BFS flood fill.
    std::vector<int> stack = {i};
    comp.AtIndex(i) = num_comp;
    int size = 0;
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      ++size;
      const Cell c = mask.CellAt(cur);
      const int dx[4] = {1, -1, 0, 0}, dy[4] = {0, 0, 1, -1};
      for (int k = 0; k < 4; ++k) {
        const int nx2 = c.x + dx[k], ny2 = c.y + dy[k];
        if (!mask.InBounds(nx2, ny2) || !mask.At(nx2, ny2)) continue;
        const int ni = mask.Index(nx2, ny2);
        if (comp.AtIndex(ni) == -1) {
          comp.AtIndex(ni) = num_comp;
          stack.push_back(ni);
        }
      }
    }
    if (size > best_size) {
      best_size = size;
      best_comp = num_comp;
    }
    ++num_comp;
  }
  for (int i = 0; i < mask.size(); ++i) {
    if (mask.AtIndex(i) && comp.AtIndex(i) != best_comp) {
      mask.AtIndex(i) = false;
    }
  }
  return mask;
}

// Boundary cells: in-park cells with at least one out-of-park 4-neighbor
// or on the grid edge.
std::vector<Cell> BoundaryCells(const GridB& mask) {
  std::vector<Cell> out;
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      if (!mask.At(x, y)) continue;
      bool edge = (x == 0 || y == 0 || x == mask.width() - 1 ||
                   y == mask.height() - 1);
      const int dx[4] = {1, -1, 0, 0}, dy[4] = {0, 0, 1, -1};
      for (int k = 0; k < 4 && !edge; ++k) {
        const int nx = x + dx[k], ny = y + dy[k];
        if (mask.InBounds(nx, ny) && !mask.At(nx, ny)) edge = true;
      }
      if (edge) out.push_back(Cell{x, y});
    }
  }
  return out;
}

// A meandering polyline across the park: straight baseline between two
// random boundary cells plus perpendicular noise.
std::vector<Cell> MeanderingLine(const GridB& mask,
                                 const std::vector<Cell>& boundary, Rng* rng) {
  CheckOrDie(boundary.size() >= 2, "MeanderingLine needs a boundary");
  const Cell a = boundary[rng->UniformInt(static_cast<int>(boundary.size()))];
  Cell b = a;
  // Pick an endpoint far from a to cross the park.
  double best = -1.0;
  for (int tries = 0; tries < 20; ++tries) {
    const Cell cand =
        boundary[rng->UniformInt(static_cast<int>(boundary.size()))];
    const double d = CellDistance(a, cand);
    if (d > best) {
      best = d;
      b = cand;
    }
  }
  const int segments = 8;
  std::vector<Cell> pts;
  const double px = -(b.y - a.y), py = (b.x - a.x);  // perpendicular
  const double plen = std::max(1.0, std::sqrt(px * px + py * py));
  for (int s = 0; s <= segments; ++s) {
    const double t = static_cast<double>(s) / segments;
    const double amp = (s == 0 || s == segments)
                           ? 0.0
                           : rng->Uniform(-0.12, 0.12) * best;
    const int x = static_cast<int>(std::lround(a.x + t * (b.x - a.x) +
                                               amp * px / plen));
    const int y = static_cast<int>(std::lround(a.y + t * (b.y - a.y) +
                                               amp * py / plen));
    pts.push_back(Cell{std::clamp(x, 0, mask.width() - 1),
                       std::clamp(y, 0, mask.height() - 1)});
  }
  return pts;
}

// Distance raster capped at a finite value (unreachable cells get the cap)
// so ML features stay finite.
GridD CappedDistance(const GridB& mask, const std::vector<Cell>& sources) {
  GridD d = DistanceTransform(mask, sources);
  double cap = 0.0;
  for (int i = 0; i < d.size(); ++i) {
    if (mask.AtIndex(i) && std::isfinite(d.AtIndex(i))) {
      cap = std::max(cap, d.AtIndex(i));
    }
  }
  if (cap <= 0.0) cap = mask.width() + mask.height();
  for (int i = 0; i < d.size(); ++i) {
    if (!std::isfinite(d.AtIndex(i))) d.AtIndex(i) = cap;
  }
  return d;
}

}  // namespace

Park GenerateSyntheticPark(const SynthParkConfig& cfg) {
  CheckOrDie(cfg.width >= 8 && cfg.height >= 8,
             "synthetic park must be at least 8x8");
  CheckOrDie(cfg.num_patrol_posts >= 1, "park needs at least one patrol post");
  Rng rng(cfg.seed);
  const GridB mask = MakeMask(cfg, &rng);
  Park park(cfg.name, mask);
  const std::vector<Cell> boundary = BoundaryCells(mask);

  // --- Terrain features ---
  NoiseParams terrain;
  terrain.base_frequency = 0.06;
  GridD elevation = FractalNoise(cfg.width, cfg.height, terrain,
                                 rng.NextUint64());
  GridD slope = GradientMagnitude(elevation);
  RescaleInPlace(&slope, mask, 0.0, 1.0);

  NoiseParams veg;
  veg.base_frequency = 0.10;
  GridD forest = FractalNoise(cfg.width, cfg.height, veg, rng.NextUint64());

  // --- Hydrology / infrastructure ---
  GridB river_raster(cfg.width, cfg.height, false);
  for (int r = 0; r < cfg.num_rivers; ++r) {
    RasterizePolyline(MeanderingLine(mask, boundary, &rng), &river_raster);
  }
  std::vector<Cell> river_cells;
  for (int i = 0; i < river_raster.size(); ++i) {
    if (river_raster.AtIndex(i) && mask.AtIndex(i)) {
      river_cells.push_back(river_raster.CellAt(i));
    }
  }
  GridD dist_river = CappedDistance(mask, river_cells);

  GridB road_raster(cfg.width, cfg.height, false);
  for (int r = 0; r < cfg.num_roads; ++r) {
    RasterizePolyline(MeanderingLine(mask, boundary, &rng), &road_raster);
  }
  std::vector<Cell> road_cells;
  for (int i = 0; i < road_raster.size(); ++i) {
    if (road_raster.AtIndex(i) && mask.AtIndex(i)) {
      road_cells.push_back(road_raster.CellAt(i));
    }
  }
  GridD dist_road = CappedDistance(mask, road_cells);

  // Villages sit on the boundary (people live at the park edge).
  std::vector<Cell> villages;
  for (int v = 0; v < cfg.num_villages && !boundary.empty(); ++v) {
    villages.push_back(
        boundary[rng.UniformInt(static_cast<int>(boundary.size()))]);
  }
  GridD dist_village = CappedDistance(mask, villages);

  GridD dist_boundary = CappedDistance(mask, boundary);

  // --- Ecology ---
  // Animal density: smooth noise concentrated away from villages and roads
  // (animals avoid people), boosted near rivers (water).
  NoiseParams eco;
  eco.base_frequency = 0.05;
  GridD animal = FractalNoise(cfg.width, cfg.height, eco, rng.NextUint64());
  for (int i = 0; i < animal.size(); ++i) {
    if (!mask.AtIndex(i)) continue;
    const double far_people =
        1.0 - std::exp(-0.25 * std::min(dist_village.AtIndex(i),
                                        dist_road.AtIndex(i)));
    const double near_water = std::exp(-0.15 * dist_river.AtIndex(i));
    animal.AtIndex(i) =
        0.5 * animal.AtIndex(i) + 0.3 * far_people + 0.2 * near_water;
  }
  RescaleInPlace(&animal, mask, 0.0, 1.0);

  // Net primary productivity tracks forest cover with its own texture.
  NoiseParams npp_noise;
  npp_noise.base_frequency = 0.12;
  GridD npp = FractalNoise(cfg.width, cfg.height, npp_noise, rng.NextUint64());
  for (int i = 0; i < npp.size(); ++i) {
    npp.AtIndex(i) = 0.6 * forest.AtIndex(i) + 0.4 * npp.AtIndex(i);
  }
  RescaleInPlace(&npp, mask, 0.0, 1.0);

  // --- Patrol posts: near the boundary, spread apart (farthest-point) ---
  std::vector<Cell> posts;
  if (!boundary.empty()) {
    posts.push_back(
        boundary[rng.UniformInt(static_cast<int>(boundary.size()))]);
    while (static_cast<int>(posts.size()) < cfg.num_patrol_posts) {
      Cell best = boundary[0];
      double best_d = -1.0;
      for (const Cell& cand : boundary) {
        double dmin = std::numeric_limits<double>::infinity();
        for (const Cell& p : posts) dmin = std::min(dmin, CellDistance(cand, p));
        if (dmin > best_d) {
          best_d = dmin;
          best = cand;
        }
      }
      posts.push_back(best);
    }
  }
  GridD dist_post = CappedDistance(mask, posts);
  for (const Cell& p : posts) park.AddPatrolPost(p);

  GridD water(cfg.width, cfg.height, 0.0);
  for (int i = 0; i < water.size(); ++i) {
    water.AtIndex(i) = river_raster.AtIndex(i) ? 1.0 : 0.0;
  }

  park.AddFeature("elevation", std::move(elevation));
  park.AddFeature("slope", std::move(slope));
  park.AddFeature("forest_cover", std::move(forest));
  park.AddFeature("animal_density", std::move(animal));
  park.AddFeature("npp", std::move(npp));
  park.AddFeature("dist_river", std::move(dist_river));
  park.AddFeature("dist_road", std::move(dist_road));
  park.AddFeature("dist_village", std::move(dist_village));
  park.AddFeature("dist_patrol_post", std::move(dist_post));
  park.AddFeature("dist_boundary", std::move(dist_boundary));
  park.AddFeature("water", std::move(water));

  NoiseParams extra;
  extra.base_frequency = 0.15;
  for (int f = 0; f < cfg.num_extra_features; ++f) {
    park.AddFeature("noise_" + std::to_string(f),
                    FractalNoise(cfg.width, cfg.height, extra,
                                 rng.NextUint64()));
  }
  return park;
}

namespace {

// One straight piece of a parametric polyline, in grid coordinates.
struct Segment {
  double ax = 0.0, ay = 0.0, bx = 0.0, by = 0.0;
};

double PointSegmentDistance(double px, double py, const Segment& s) {
  const double dx = s.bx - s.ax, dy = s.by - s.ay;
  const double len2 = dx * dx + dy * dy;
  double t = len2 > 0.0 ? ((px - s.ax) * dx + (py - s.ay) * dy) / len2 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const double qx = s.ax + t * dx, qy = s.ay + t * dy;
  return std::sqrt((px - qx) * (px - qx) + (py - qy) * (py - qy));
}

// A meandering polyline crossing the ellipse: two roughly opposite
// boundary points joined by segments with perpendicular noise. Kept as
// parametric segments (a handful of doubles), never rasterized — distance
// features are evaluated analytically per cell.
void AppendMeander(double cx, double cy, double rx, double ry, Rng* rng,
                   std::vector<Segment>* out) {
  const double ta = rng->Uniform(0.0, 2.0 * 3.14159265358979323846);
  const double tb = ta + 3.14159265358979323846 + rng->Uniform(-0.6, 0.6);
  const double ax = cx + 0.98 * rx * std::cos(ta);
  const double ay = cy + 0.98 * ry * std::sin(ta);
  const double bx = cx + 0.98 * rx * std::cos(tb);
  const double by = cy + 0.98 * ry * std::sin(tb);
  const double span = std::sqrt((bx - ax) * (bx - ax) + (by - ay) * (by - ay));
  double px = -(by - ay), py = (bx - ax);
  const double plen = std::max(1.0, std::sqrt(px * px + py * py));
  px /= plen;
  py /= plen;
  const int segments = 8;
  double prev_x = ax, prev_y = ay;
  for (int s = 1; s <= segments; ++s) {
    const double t = static_cast<double>(s) / segments;
    const double amp =
        s == segments ? 0.0 : rng->Uniform(-0.12, 0.12) * span;
    const double x = ax + t * (bx - ax) + amp * px;
    const double y = ay + t * (by - ay) + amp * py;
    out->push_back(Segment{prev_x, prev_y, x, y});
    prev_x = x;
    prev_y = y;
  }
}

double MinSegmentDistance(double px, double py,
                          const std::vector<Segment>& segments, double cap) {
  double best = cap;
  for (const Segment& s : segments) {
    best = std::min(best, PointSegmentDistance(px, py, s));
  }
  return best;
}

double MinPointDistance(double px, double py,
                        const std::vector<Cell>& points, double cap) {
  double best = cap;
  for (const Cell& p : points) {
    const double dx = px - p.x, dy = py - p.y;
    best = std::min(best, std::sqrt(dx * dx + dy * dy));
  }
  return best;
}

// Three octaves of value noise in [0, 1] — the analytic stand-in for
// FractalNoise that needs no intermediate grid.
double OctaveNoise(double x, double y, double base_frequency,
                   uint64_t seed) {
  double sum = 0.0, weight = 0.0, freq = base_frequency, amp = 1.0;
  for (int octave = 0; octave < 3; ++octave) {
    sum += amp * ValueNoise2D(x * freq, y * freq, seed + octave);
    weight += amp;
    freq *= 2.0;
    amp *= 0.5;
  }
  return sum / weight;
}

}  // namespace

Park GenerateMegaPark(const MegaParkConfig& cfg) {
  CheckOrDie(cfg.target_cells >= 64, "mega park needs at least 64 cells");
  CheckOrDie(cfg.num_patrol_posts >= 1, "park needs at least one patrol post");
  // An ellipse with semi-axes 0.48*side covers pi * 0.48^2 ~ 72.4% of a
  // square grid; size the grid so the in-park count lands on target.
  const double kFill = 3.14159265358979323846 * 0.48 * 0.48;
  const int side = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(cfg.target_cells) / kFill)));
  const int width = side, height = side;
  const double cx = 0.5 * (width - 1), cy = 0.5 * (height - 1);
  const double rx = 0.48 * width, ry = 0.48 * height;

  Rng rng(cfg.seed);

  // Un-noised ellipse: convex, so connected by construction — the largest-
  // component flood fill the small generator needs is unnecessary here.
  GridB mask(width, height, false);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double nx = (x - cx) / rx, ny = (y - cy) / ry;
      if (nx * nx + ny * ny <= 1.0) mask.At(x, y) = true;
    }
  }
  Park park(cfg.name, std::move(mask));
  const GridB& m = park.mask();

  // Infrastructure is parametric: segment lists and point lists, O(count)
  // storage, evaluated per cell below.
  std::vector<Segment> rivers, roads;
  for (int r = 0; r < cfg.num_rivers; ++r) {
    AppendMeander(cx, cy, rx, ry, &rng, &rivers);
  }
  for (int r = 0; r < cfg.num_roads; ++r) {
    AppendMeander(cx, cy, rx, ry, &rng, &roads);
  }
  std::vector<Cell> villages;
  for (int v = 0; v < cfg.num_villages; ++v) {
    const double t = rng.Uniform(0.0, 2.0 * 3.14159265358979323846);
    villages.push_back(
        Cell{static_cast<int>(std::lround(cx + 0.97 * rx * std::cos(t))),
             static_cast<int>(std::lround(cy + 0.97 * ry * std::sin(t)))});
  }
  std::vector<Cell> posts;
  for (int p = 0; p < cfg.num_patrol_posts; ++p) {
    // Evenly spread around the boundary, pulled inside the ellipse so the
    // rounded cell is always in-park.
    const double t = (2.0 * 3.14159265358979323846 * p) /
                     cfg.num_patrol_posts;
    posts.push_back(
        Cell{static_cast<int>(std::lround(cx + 0.9 * rx * std::cos(t))),
             static_cast<int>(std::lround(cy + 0.9 * ry * std::sin(t)))});
  }
  const double dist_cap = width + height;

  // --- Terrain (one raster at a time; per-cell analytic noise) ---
  const uint64_t elev_seed = rng.NextUint64();
  GridD elevation(width, height, 0.0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      elevation.At(x, y) = OctaveNoise(x, y, 0.06, elev_seed);
    }
  }
  GridD slope = GradientMagnitude(elevation);
  RescaleInPlace(&slope, m, 0.0, 1.0);

  const uint64_t forest_seed = rng.NextUint64();
  GridD forest(width, height, 0.0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      forest.At(x, y) = OctaveNoise(x, y, 0.10, forest_seed);
    }
  }

  // --- Distances: exact point-to-segment/point math, no BFS transform ---
  GridD dist_river(width, height, dist_cap);
  GridD water(width, height, 0.0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double d = MinSegmentDistance(x, y, rivers, dist_cap);
      dist_river.At(x, y) = d;
      // The meander's rasterization would mark cells it passes through;
      // a sub-cell distance band is the analytic equivalent.
      if (d <= 0.71 && m.At(x, y)) water.At(x, y) = 1.0;
    }
  }
  GridD dist_road(width, height, dist_cap);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      dist_road.At(x, y) = MinSegmentDistance(x, y, roads, dist_cap);
    }
  }
  GridD dist_village(width, height, dist_cap);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      dist_village.At(x, y) = MinPointDistance(x, y, villages, dist_cap);
    }
  }
  GridD dist_post(width, height, dist_cap);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      dist_post.At(x, y) = MinPointDistance(x, y, posts, dist_cap);
    }
  }
  // Distance to the park outline, analytically: how far the cell's radial
  // coordinate sits from the ellipse edge, scaled by the local radius.
  GridD dist_boundary(width, height, 0.0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double nx = (x - cx) / rx, ny = (y - cy) / ry;
      const double r = std::sqrt(nx * nx + ny * ny);
      dist_boundary.At(x, y) = std::abs(1.0 - r) * std::min(rx, ry);
    }
  }

  // --- Ecology: same shaping as the small generator, from built rasters ---
  const uint64_t animal_seed = rng.NextUint64();
  GridD animal(width, height, 0.0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (!m.At(x, y)) continue;
      const double base = OctaveNoise(x, y, 0.05, animal_seed);
      const double far_people =
          1.0 - std::exp(-0.25 * std::min(dist_village.At(x, y),
                                          dist_road.At(x, y)));
      const double near_water = std::exp(-0.15 * dist_river.At(x, y));
      animal.At(x, y) = 0.5 * base + 0.3 * far_people + 0.2 * near_water;
    }
  }
  RescaleInPlace(&animal, m, 0.0, 1.0);

  const uint64_t npp_seed = rng.NextUint64();
  GridD npp(width, height, 0.0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      npp.At(x, y) =
          0.6 * forest.At(x, y) + 0.4 * OctaveNoise(x, y, 0.12, npp_seed);
    }
  }
  RescaleInPlace(&npp, m, 0.0, 1.0);

  for (const Cell& p : posts) park.AddPatrolPost(p);

  // Same 11-feature stack, same names and order, as GenerateSyntheticPark.
  park.AddFeature("elevation", std::move(elevation));
  park.AddFeature("slope", std::move(slope));
  park.AddFeature("forest_cover", std::move(forest));
  park.AddFeature("animal_density", std::move(animal));
  park.AddFeature("npp", std::move(npp));
  park.AddFeature("dist_river", std::move(dist_river));
  park.AddFeature("dist_road", std::move(dist_road));
  park.AddFeature("dist_village", std::move(dist_village));
  park.AddFeature("dist_patrol_post", std::move(dist_post));
  park.AddFeature("dist_boundary", std::move(dist_boundary));
  park.AddFeature("water", std::move(water));
  return park;
}

}  // namespace paws
