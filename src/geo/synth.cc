#include "geo/synth.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geo/noise.h"
#include "geo/raster_ops.h"
#include "util/rng.h"

namespace paws {

namespace {

// Builds the park outline: an ellipse (circular or elongated) whose radius
// is modulated by low-frequency noise, mimicking irregular park boundaries.
GridB MakeMask(const SynthParkConfig& cfg, Rng* rng) {
  GridB mask(cfg.width, cfg.height, false);
  const double cx = 0.5 * (cfg.width - 1);
  const double cy = 0.5 * (cfg.height - 1);
  // Elongated parks stretch along x (QENP is "long").
  const double rx =
      cfg.shape == ParkShape::kElongated ? 0.48 * cfg.width : 0.44 * cfg.width;
  const double ry = cfg.shape == ParkShape::kElongated ? 0.30 * cfg.height
                                                       : 0.44 * cfg.height;
  const uint64_t noise_seed = rng->NextUint64();
  for (int y = 0; y < cfg.height; ++y) {
    for (int x = 0; x < cfg.width; ++x) {
      const double nx = (x - cx) / rx;
      const double ny = (y - cy) / ry;
      const double r = std::sqrt(nx * nx + ny * ny);
      const double wobble =
          cfg.boundary_noise *
          (ValueNoise2D(x * 0.07, y * 0.07, noise_seed) - 0.5) * 2.0;
      if (r <= 1.0 + wobble) mask.At(x, y) = true;
    }
  }
  // Keep only the largest connected component so the patrol graph is
  // connected.
  GridI comp(cfg.width, cfg.height, -1);
  int best_comp = -1, best_size = 0, num_comp = 0;
  for (int i = 0; i < mask.size(); ++i) {
    if (!mask.AtIndex(i) || comp.AtIndex(i) != -1) continue;
    // BFS flood fill.
    std::vector<int> stack = {i};
    comp.AtIndex(i) = num_comp;
    int size = 0;
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      ++size;
      const Cell c = mask.CellAt(cur);
      const int dx[4] = {1, -1, 0, 0}, dy[4] = {0, 0, 1, -1};
      for (int k = 0; k < 4; ++k) {
        const int nx2 = c.x + dx[k], ny2 = c.y + dy[k];
        if (!mask.InBounds(nx2, ny2) || !mask.At(nx2, ny2)) continue;
        const int ni = mask.Index(nx2, ny2);
        if (comp.AtIndex(ni) == -1) {
          comp.AtIndex(ni) = num_comp;
          stack.push_back(ni);
        }
      }
    }
    if (size > best_size) {
      best_size = size;
      best_comp = num_comp;
    }
    ++num_comp;
  }
  for (int i = 0; i < mask.size(); ++i) {
    if (mask.AtIndex(i) && comp.AtIndex(i) != best_comp) {
      mask.AtIndex(i) = false;
    }
  }
  return mask;
}

// Boundary cells: in-park cells with at least one out-of-park 4-neighbor
// or on the grid edge.
std::vector<Cell> BoundaryCells(const GridB& mask) {
  std::vector<Cell> out;
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      if (!mask.At(x, y)) continue;
      bool edge = (x == 0 || y == 0 || x == mask.width() - 1 ||
                   y == mask.height() - 1);
      const int dx[4] = {1, -1, 0, 0}, dy[4] = {0, 0, 1, -1};
      for (int k = 0; k < 4 && !edge; ++k) {
        const int nx = x + dx[k], ny = y + dy[k];
        if (mask.InBounds(nx, ny) && !mask.At(nx, ny)) edge = true;
      }
      if (edge) out.push_back(Cell{x, y});
    }
  }
  return out;
}

// A meandering polyline across the park: straight baseline between two
// random boundary cells plus perpendicular noise.
std::vector<Cell> MeanderingLine(const GridB& mask,
                                 const std::vector<Cell>& boundary, Rng* rng) {
  CheckOrDie(boundary.size() >= 2, "MeanderingLine needs a boundary");
  const Cell a = boundary[rng->UniformInt(static_cast<int>(boundary.size()))];
  Cell b = a;
  // Pick an endpoint far from a to cross the park.
  double best = -1.0;
  for (int tries = 0; tries < 20; ++tries) {
    const Cell cand =
        boundary[rng->UniformInt(static_cast<int>(boundary.size()))];
    const double d = CellDistance(a, cand);
    if (d > best) {
      best = d;
      b = cand;
    }
  }
  const int segments = 8;
  std::vector<Cell> pts;
  const double px = -(b.y - a.y), py = (b.x - a.x);  // perpendicular
  const double plen = std::max(1.0, std::sqrt(px * px + py * py));
  for (int s = 0; s <= segments; ++s) {
    const double t = static_cast<double>(s) / segments;
    const double amp = (s == 0 || s == segments)
                           ? 0.0
                           : rng->Uniform(-0.12, 0.12) * best;
    const int x = static_cast<int>(std::lround(a.x + t * (b.x - a.x) +
                                               amp * px / plen));
    const int y = static_cast<int>(std::lround(a.y + t * (b.y - a.y) +
                                               amp * py / plen));
    pts.push_back(Cell{std::clamp(x, 0, mask.width() - 1),
                       std::clamp(y, 0, mask.height() - 1)});
  }
  return pts;
}

// Distance raster capped at a finite value (unreachable cells get the cap)
// so ML features stay finite.
GridD CappedDistance(const GridB& mask, const std::vector<Cell>& sources) {
  GridD d = DistanceTransform(mask, sources);
  double cap = 0.0;
  for (int i = 0; i < d.size(); ++i) {
    if (mask.AtIndex(i) && std::isfinite(d.AtIndex(i))) {
      cap = std::max(cap, d.AtIndex(i));
    }
  }
  if (cap <= 0.0) cap = mask.width() + mask.height();
  for (int i = 0; i < d.size(); ++i) {
    if (!std::isfinite(d.AtIndex(i))) d.AtIndex(i) = cap;
  }
  return d;
}

}  // namespace

Park GenerateSyntheticPark(const SynthParkConfig& cfg) {
  CheckOrDie(cfg.width >= 8 && cfg.height >= 8,
             "synthetic park must be at least 8x8");
  CheckOrDie(cfg.num_patrol_posts >= 1, "park needs at least one patrol post");
  Rng rng(cfg.seed);
  const GridB mask = MakeMask(cfg, &rng);
  Park park(cfg.name, mask);
  const std::vector<Cell> boundary = BoundaryCells(mask);

  // --- Terrain features ---
  NoiseParams terrain;
  terrain.base_frequency = 0.06;
  GridD elevation = FractalNoise(cfg.width, cfg.height, terrain,
                                 rng.NextUint64());
  GridD slope = GradientMagnitude(elevation);
  RescaleInPlace(&slope, mask, 0.0, 1.0);

  NoiseParams veg;
  veg.base_frequency = 0.10;
  GridD forest = FractalNoise(cfg.width, cfg.height, veg, rng.NextUint64());

  // --- Hydrology / infrastructure ---
  GridB river_raster(cfg.width, cfg.height, false);
  for (int r = 0; r < cfg.num_rivers; ++r) {
    RasterizePolyline(MeanderingLine(mask, boundary, &rng), &river_raster);
  }
  std::vector<Cell> river_cells;
  for (int i = 0; i < river_raster.size(); ++i) {
    if (river_raster.AtIndex(i) && mask.AtIndex(i)) {
      river_cells.push_back(river_raster.CellAt(i));
    }
  }
  GridD dist_river = CappedDistance(mask, river_cells);

  GridB road_raster(cfg.width, cfg.height, false);
  for (int r = 0; r < cfg.num_roads; ++r) {
    RasterizePolyline(MeanderingLine(mask, boundary, &rng), &road_raster);
  }
  std::vector<Cell> road_cells;
  for (int i = 0; i < road_raster.size(); ++i) {
    if (road_raster.AtIndex(i) && mask.AtIndex(i)) {
      road_cells.push_back(road_raster.CellAt(i));
    }
  }
  GridD dist_road = CappedDistance(mask, road_cells);

  // Villages sit on the boundary (people live at the park edge).
  std::vector<Cell> villages;
  for (int v = 0; v < cfg.num_villages && !boundary.empty(); ++v) {
    villages.push_back(
        boundary[rng.UniformInt(static_cast<int>(boundary.size()))]);
  }
  GridD dist_village = CappedDistance(mask, villages);

  GridD dist_boundary = CappedDistance(mask, boundary);

  // --- Ecology ---
  // Animal density: smooth noise concentrated away from villages and roads
  // (animals avoid people), boosted near rivers (water).
  NoiseParams eco;
  eco.base_frequency = 0.05;
  GridD animal = FractalNoise(cfg.width, cfg.height, eco, rng.NextUint64());
  for (int i = 0; i < animal.size(); ++i) {
    if (!mask.AtIndex(i)) continue;
    const double far_people =
        1.0 - std::exp(-0.25 * std::min(dist_village.AtIndex(i),
                                        dist_road.AtIndex(i)));
    const double near_water = std::exp(-0.15 * dist_river.AtIndex(i));
    animal.AtIndex(i) =
        0.5 * animal.AtIndex(i) + 0.3 * far_people + 0.2 * near_water;
  }
  RescaleInPlace(&animal, mask, 0.0, 1.0);

  // Net primary productivity tracks forest cover with its own texture.
  NoiseParams npp_noise;
  npp_noise.base_frequency = 0.12;
  GridD npp = FractalNoise(cfg.width, cfg.height, npp_noise, rng.NextUint64());
  for (int i = 0; i < npp.size(); ++i) {
    npp.AtIndex(i) = 0.6 * forest.AtIndex(i) + 0.4 * npp.AtIndex(i);
  }
  RescaleInPlace(&npp, mask, 0.0, 1.0);

  // --- Patrol posts: near the boundary, spread apart (farthest-point) ---
  std::vector<Cell> posts;
  if (!boundary.empty()) {
    posts.push_back(
        boundary[rng.UniformInt(static_cast<int>(boundary.size()))]);
    while (static_cast<int>(posts.size()) < cfg.num_patrol_posts) {
      Cell best = boundary[0];
      double best_d = -1.0;
      for (const Cell& cand : boundary) {
        double dmin = std::numeric_limits<double>::infinity();
        for (const Cell& p : posts) dmin = std::min(dmin, CellDistance(cand, p));
        if (dmin > best_d) {
          best_d = dmin;
          best = cand;
        }
      }
      posts.push_back(best);
    }
  }
  GridD dist_post = CappedDistance(mask, posts);
  for (const Cell& p : posts) park.AddPatrolPost(p);

  GridD water(cfg.width, cfg.height, 0.0);
  for (int i = 0; i < water.size(); ++i) {
    water.AtIndex(i) = river_raster.AtIndex(i) ? 1.0 : 0.0;
  }

  park.AddFeature("elevation", std::move(elevation));
  park.AddFeature("slope", std::move(slope));
  park.AddFeature("forest_cover", std::move(forest));
  park.AddFeature("animal_density", std::move(animal));
  park.AddFeature("npp", std::move(npp));
  park.AddFeature("dist_river", std::move(dist_river));
  park.AddFeature("dist_road", std::move(dist_road));
  park.AddFeature("dist_village", std::move(dist_village));
  park.AddFeature("dist_patrol_post", std::move(dist_post));
  park.AddFeature("dist_boundary", std::move(dist_boundary));
  park.AddFeature("water", std::move(water));

  NoiseParams extra;
  extra.base_frequency = 0.15;
  for (int f = 0; f < cfg.num_extra_features; ++f) {
    park.AddFeature("noise_" + std::to_string(f),
                    FractalNoise(cfg.width, cfg.height, extra,
                                 rng.NextUint64()));
  }
  return park;
}

}  // namespace paws
