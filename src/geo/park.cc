#include "geo/park.h"

namespace paws {

Park::Park(std::string name, GridB mask)
    : name_(std::move(name)), mask_(std::move(mask)) {
  dense_id_.assign(mask_.size(), -1);
  for (int i = 0; i < mask_.size(); ++i) {
    if (mask_.AtIndex(i)) {
      dense_id_[i] = static_cast<int>(cell_indices_.size());
      cell_indices_.push_back(i);
    }
  }
  CheckOrDie(!cell_indices_.empty(), "Park has no in-park cells");
}

int Park::DenseId(int grid_index) const {
  CheckOrDie(grid_index >= 0 && grid_index < mask_.size(),
             "Park::DenseId out of bounds");
  return dense_id_[grid_index];
}

Cell Park::CellOf(int id) const {
  CheckOrDie(id >= 0 && id < num_cells(), "Park::CellOf out of bounds");
  return mask_.CellAt(cell_indices_[id]);
}

int Park::AddFeature(std::string feature_name, GridD raster) {
  CheckOrDie(raster.width() == mask_.width() &&
                 raster.height() == mask_.height(),
             "Park::AddFeature raster shape mismatch");
  feature_names_.push_back(std::move(feature_name));
  features_.push_back(std::move(raster));
  return static_cast<int>(features_.size()) - 1;
}

StatusOr<int> Park::FeatureIndex(const std::string& feature_name) const {
  for (size_t i = 0; i < feature_names_.size(); ++i) {
    if (feature_names_[i] == feature_name) return static_cast<int>(i);
  }
  return Status::NotFound("no feature named " + feature_name);
}

std::vector<double> Park::FeatureVector(int dense_id) const {
  const Cell c = CellOf(dense_id);
  std::vector<double> x(features_.size());
  for (size_t f = 0; f < features_.size(); ++f) x[f] = features_[f].At(c);
  return x;
}

void Park::AddPatrolPost(const Cell& c) {
  CheckOrDie(mask_.InBounds(c) && mask_.At(c),
             "Park::AddPatrolPost outside the park");
  patrol_posts_.push_back(c);
}

namespace {

constexpr uint32_t kParkSchemaVersion = 1;
constexpr uint32_t kParkSectionTag = FourCc("PARK");

// Rasters travel as width/height plus the flat payload; reads validate the
// shape so a corrupt archive cannot build an inconsistent grid.
template <typename Grid, typename WriteVec>
void SaveGrid(const Grid& grid, ArchiveWriter* ar, WriteVec write_vec) {
  ar->WriteI32(grid.width());
  ar->WriteI32(grid.height());
  (ar->*write_vec)(grid.data());
}

template <typename Grid, typename Vec,
          Status (ArchiveReader::*read_vec)(Vec*)>
StatusOr<Grid> LoadGrid(ArchiveReader* ar) {
  int width = 0, height = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&width));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&height));
  if (width < 0 || height < 0) {
    return Status::InvalidArgument("park grid: negative shape");
  }
  Vec data;
  PAWS_RETURN_IF_ERROR((ar->*read_vec)(&data));
  if (data.size() != static_cast<size_t>(width) * height) {
    return Status::InvalidArgument("park grid: payload/shape mismatch");
  }
  Grid grid(width, height);
  grid.data() = std::move(data);
  return grid;
}

}  // namespace

void SavePark(const Park& park, ArchiveWriter* ar) {
  ar->BeginSection(kParkSectionTag);
  ar->WriteU32(kParkSchemaVersion);
  ar->WriteString(park.name());
  SaveGrid(park.mask(), ar, &ArchiveWriter::WriteU8Vector);
  ar->WriteU64(park.num_features());
  for (int f = 0; f < park.num_features(); ++f) {
    ar->WriteString(park.feature_names()[f]);
    SaveGrid(park.feature(f), ar, &ArchiveWriter::WriteDoubleVector);
  }
  ar->WriteU64(park.patrol_posts().size());
  for (const Cell& post : park.patrol_posts()) {
    ar->WriteI32(post.x);
    ar->WriteI32(post.y);
  }
  ar->EndSection();
}

StatusOr<Park> LoadPark(ArchiveReader* ar) {
  PAWS_RETURN_IF_ERROR(ar->EnterSection(kParkSectionTag));
  uint32_t version = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU32(&version));
  if (version != kParkSchemaVersion) {
    return Status::InvalidArgument("Park: unsupported schema version " +
                                   std::to_string(version));
  }
  std::string name;
  PAWS_RETURN_IF_ERROR(ar->ReadString(&name));
  PAWS_ASSIGN_OR_RETURN(
      GridB mask,
      (LoadGrid<GridB, std::vector<uint8_t>, &ArchiveReader::ReadU8Vector>(
          ar)));
  bool any_inside = false;
  for (uint8_t m : mask.data()) any_inside = any_inside || m != 0;
  if (!any_inside) {
    return Status::InvalidArgument("Park: mask has no in-park cells");
  }
  Park park(std::move(name), std::move(mask));
  uint64_t num_features = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU64(&num_features));
  if (num_features > ar->remaining()) {
    return Status::InvalidArgument("Park: feature count overruns archive");
  }
  for (uint64_t f = 0; f < num_features; ++f) {
    std::string feature_name;
    PAWS_RETURN_IF_ERROR(ar->ReadString(&feature_name));
    PAWS_ASSIGN_OR_RETURN(
        GridD raster,
        (LoadGrid<GridD, std::vector<double>, &ArchiveReader::ReadDoubleVector>(
            ar)));
    if (raster.width() != park.width() || raster.height() != park.height()) {
      return Status::InvalidArgument("Park: feature raster shape mismatch");
    }
    park.AddFeature(std::move(feature_name), std::move(raster));
  }
  uint64_t num_posts = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadU64(&num_posts));
  if (num_posts > ar->remaining() / 8) {
    return Status::InvalidArgument("Park: post count overruns archive");
  }
  for (uint64_t p = 0; p < num_posts; ++p) {
    Cell post;
    PAWS_RETURN_IF_ERROR(ar->ReadI32(&post.x));
    PAWS_RETURN_IF_ERROR(ar->ReadI32(&post.y));
    if (!park.mask().InBounds(post) || !park.mask().At(post)) {
      return Status::InvalidArgument("Park: patrol post outside the park");
    }
    park.AddPatrolPost(post);
  }
  PAWS_RETURN_IF_ERROR(ar->LeaveSection());
  return park;
}

}  // namespace paws
