#include "geo/park.h"

namespace paws {

Park::Park(std::string name, GridB mask)
    : name_(std::move(name)), mask_(std::move(mask)) {
  dense_id_.assign(mask_.size(), -1);
  for (int i = 0; i < mask_.size(); ++i) {
    if (mask_.AtIndex(i)) {
      dense_id_[i] = static_cast<int>(cell_indices_.size());
      cell_indices_.push_back(i);
    }
  }
  CheckOrDie(!cell_indices_.empty(), "Park has no in-park cells");
}

int Park::DenseId(int grid_index) const {
  CheckOrDie(grid_index >= 0 && grid_index < mask_.size(),
             "Park::DenseId out of bounds");
  return dense_id_[grid_index];
}

Cell Park::CellOf(int id) const {
  CheckOrDie(id >= 0 && id < num_cells(), "Park::CellOf out of bounds");
  return mask_.CellAt(cell_indices_[id]);
}

int Park::AddFeature(std::string feature_name, GridD raster) {
  CheckOrDie(raster.width() == mask_.width() &&
                 raster.height() == mask_.height(),
             "Park::AddFeature raster shape mismatch");
  feature_names_.push_back(std::move(feature_name));
  features_.push_back(std::move(raster));
  return static_cast<int>(features_.size()) - 1;
}

StatusOr<int> Park::FeatureIndex(const std::string& feature_name) const {
  for (size_t i = 0; i < feature_names_.size(); ++i) {
    if (feature_names_[i] == feature_name) return static_cast<int>(i);
  }
  return Status::NotFound("no feature named " + feature_name);
}

std::vector<double> Park::FeatureVector(int dense_id) const {
  const Cell c = CellOf(dense_id);
  std::vector<double> x(features_.size());
  for (size_t f = 0; f < features_.size(); ++f) x[f] = features_[f].At(c);
  return x;
}

void Park::AddPatrolPost(const Cell& c) {
  CheckOrDie(mask_.InBounds(c) && mask_.At(c),
             "Park::AddPatrolPost outside the park");
  patrol_posts_.push_back(c);
}

}  // namespace paws
