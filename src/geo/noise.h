#ifndef PAWS_GEO_NOISE_H_
#define PAWS_GEO_NOISE_H_

#include <cstdint>

#include "geo/grid.h"

namespace paws {

/// Smooth fractal value noise over a grid: several octaves of bilinear-
/// interpolated lattice noise. Output is normalized to [0, 1]. Used to
/// synthesize terrain layers (elevation, forest cover, animal density, net
/// primary productivity) with realistic spatial autocorrelation.
struct NoiseParams {
  double base_frequency = 0.08;  // lattice cells per grid cell at octave 0
  int octaves = 4;
  double persistence = 0.5;  // amplitude decay per octave
  double lacunarity = 2.0;   // frequency growth per octave
};

/// Generates a width x height fractal noise field, deterministic in `seed`.
GridD FractalNoise(int width, int height, const NoiseParams& params,
                   uint64_t seed);

/// Single smooth noise value at continuous coordinates (used internally and
/// exposed for tests; deterministic in seed).
double ValueNoise2D(double x, double y, uint64_t seed);

}  // namespace paws

#endif  // PAWS_GEO_NOISE_H_
