#ifndef PAWS_GEO_SYNTH_H_
#define PAWS_GEO_SYNTH_H_

#include <cstdint>
#include <string>

#include "geo/park.h"

namespace paws {

/// Shape of the synthetic protected area. The paper contrasts MFNP
/// (circular, protected core, poaching at the edges) with QENP (elongated,
/// center accessible from the boundary).
enum class ParkShape {
  kCircular,
  kElongated,
};

/// Parameters of the synthetic park generator. Defaults produce a small
/// park suitable for tests; presets in core/presets.h scale these to the
/// paper's three parks.
struct SynthParkConfig {
  std::string name = "synthetic";
  int width = 40;
  int height = 30;
  ParkShape shape = ParkShape::kCircular;
  double boundary_noise = 0.15;  // irregularity of the park outline
  int num_rivers = 3;
  int num_roads = 2;
  int num_villages = 4;   // villages sit just outside / at the boundary
  int num_patrol_posts = 4;
  /// Number of extra uninformative noise features appended so total feature
  /// counts can match the paper's per-park k (Table I: 22 / 19 / 21).
  int num_extra_features = 0;
  uint64_t seed = 7;
};

/// Generates a synthetic park with the standard feature stack:
///   elevation, slope, forest_cover, animal_density, npp,
///   dist_river, dist_road, dist_village, dist_patrol_post, dist_boundary,
///   water (binary river raster), plus `num_extra_features` noise layers.
/// All features are rescaled to [0, 1] over in-park cells except distances,
/// which are in km. Patrol posts are placed near the boundary, spaced apart.
Park GenerateSyntheticPark(const SynthParkConfig& config);

/// Parameters of the streamed mega-park generator. `target_cells` is the
/// approximate number of IN-PARK cells; the grid is sized so an elliptical
/// mask covers that many (the actual count lands within a few percent).
struct MegaParkConfig {
  std::string name = "mega-park";
  std::int64_t target_cells = 1000000;
  int num_rivers = 4;
  int num_roads = 3;
  int num_villages = 8;
  int num_patrol_posts = 8;
  uint64_t seed = 7;
};

/// Generates a multi-million-cell park with the same feature stack as
/// GenerateSyntheticPark (11 features; identical names and order), sized
/// by cell count instead of grid dims — the tiled-serving benchmark
/// substrate. A model trained on any park with the same row width serves
/// it directly.
///
/// Built for scale: every layer is computed analytically per cell, one
/// raster at a time — an un-noised elliptical mask (connected by
/// construction: no flood fill), value-noise terrain, and exact
/// point-to-segment distances against parametric river/road polylines
/// (no BFS distance transform). Peak memory during generation is the park
/// being built plus O(1) scratch; there are no O(cells) temporaries
/// beyond the rasters the Park keeps.
Park GenerateMegaPark(const MegaParkConfig& config);

}  // namespace paws

#endif  // PAWS_GEO_SYNTH_H_
