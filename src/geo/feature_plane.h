#ifndef PAWS_GEO_FEATURE_PLANE_H_
#define PAWS_GEO_FEATURE_PLANE_H_

#include <cstdint>
#include <vector>

#include "geo/park.h"
#include "util/feature_matrix.h"

namespace paws {

/// Cached per-cell feature rows for a park at serving time: every dense
/// cell's static geospatial features plus the one time-variant covariate —
/// the lagged patrol-coverage column — assembled once as derived state
/// instead of per request. Serving calls take zero-copy
/// FeatureMatrixView's over the cache; the rows are byte-identical to what
/// BuildCellFeatureRows produces from the same park and coverage layer, so
/// migrating a caller never changes its predictions.
///
/// Invalidation contract: the static feature columns are immutable (they
/// mirror the Park's rasters); only the trailing lagged-coverage column
/// ever changes. UpdateLaggedEffort rewrites that column in place (a
/// strided column write — no re-gather of the raster features) and bumps
/// coverage_version(), which cache layers above (ParkService's LRU of
/// served risk maps) fold into their keys so stale entries can never be
/// returned.
class FeaturePlane {
 public:
  /// Builds the plane for every dense cell of `park`. `lagged_effort` is
  /// the previous step's per-cell patrol coverage; pass an empty vector
  /// for the t = 0 semantics (zero lagged coverage everywhere).
  FeaturePlane(const Park& park, std::vector<double> lagged_effort);

  int num_cells() const { return num_cells_; }
  /// park.num_features() + 1: the trailing column is the lagged coverage.
  int row_width() const { return row_width_; }

  /// All-cells view, row i = dense cell id i. Valid until the plane is
  /// destroyed or updated.
  FeatureMatrixView Cells() const {
    return FeatureMatrixView::FromFlat(rows_, row_width_);
  }
  /// The flat row-major buffer behind Cells().
  const std::vector<double>& rows() const { return rows_; }

  /// Packs the given cells' rows into `*buf` and returns a view over it
  /// (the subset analogue of Cells(); `*buf` must outlive the view).
  FeatureMatrixView GatherCells(const std::vector<int>& cell_ids,
                                std::vector<double>* buf) const;

  /// The lagged-coverage column (one value per dense cell).
  const std::vector<double>& lagged_effort() const { return lagged_effort_; }

  /// Monotone counter bumped by every UpdateLaggedEffort — the cache-key
  /// component that invalidates anything derived from the old coverage.
  uint64_t coverage_version() const { return coverage_version_; }

  /// Replaces the lagged-coverage layer: rewrites the trailing column of
  /// every cached row and bumps coverage_version(). Size must match
  /// num_cells() (or be empty for all-zero coverage).
  void UpdateLaggedEffort(std::vector<double> lagged_effort);

  /// Assembles flat feature rows (static features + lagged coverage) for
  /// the given cells without a plane — the one shared assembly loop behind
  /// this class and BuildCellFeatureRows. `lagged` may be null (zero
  /// coverage).
  static std::vector<double> BuildRows(const Park& park,
                                       const std::vector<double>* lagged,
                                       const std::vector<int>& cell_ids);

 private:
  int num_cells_ = 0;
  int row_width_ = 0;
  std::vector<double> rows_;  // row-major [cell * row_width_ + column]
  std::vector<double> lagged_effort_;
  uint64_t coverage_version_ = 0;
};

}  // namespace paws

#endif  // PAWS_GEO_FEATURE_PLANE_H_
