#include "geo/noise.h"

#include <algorithm>
#include <cmath>

namespace paws {

namespace {

// Deterministic lattice hash -> [0, 1).
double LatticeValue(int64_t xi, int64_t yi, uint64_t seed) {
  uint64_t h = seed;
  h ^= static_cast<uint64_t>(xi) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<uint64_t>(yi) * 0x94d049bb133111ebULL;
  h = (h ^ (h >> 27)) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double SmoothStep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

double ValueNoise2D(double x, double y, uint64_t seed) {
  const int64_t xi = static_cast<int64_t>(std::floor(x));
  const int64_t yi = static_cast<int64_t>(std::floor(y));
  const double tx = SmoothStep(x - xi);
  const double ty = SmoothStep(y - yi);
  const double v00 = LatticeValue(xi, yi, seed);
  const double v10 = LatticeValue(xi + 1, yi, seed);
  const double v01 = LatticeValue(xi, yi + 1, seed);
  const double v11 = LatticeValue(xi + 1, yi + 1, seed);
  const double a = v00 + (v10 - v00) * tx;
  const double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

GridD FractalNoise(int width, int height, const NoiseParams& params,
                   uint64_t seed) {
  GridD out(width, height);
  double lo = 1e300, hi = -1e300;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double amp = 1.0;
      double freq = params.base_frequency;
      double sum = 0.0;
      double norm = 0.0;
      for (int o = 0; o < params.octaves; ++o) {
        sum += amp * ValueNoise2D(x * freq, y * freq, seed + 0x1234567ULL * o);
        norm += amp;
        amp *= params.persistence;
        freq *= params.lacunarity;
      }
      const double v = norm > 0 ? sum / norm : 0.0;
      out.At(x, y) = v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  // Normalize to [0, 1] so downstream layers can treat noise uniformly.
  const double span = hi - lo;
  if (span > 0) {
    for (double& v : out.data()) v = (v - lo) / span;
  }
  return out;
}

}  // namespace paws
