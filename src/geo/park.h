#ifndef PAWS_GEO_PARK_H_
#define PAWS_GEO_PARK_H_

#include <string>
#include <vector>

#include "geo/grid.h"
#include "util/archive.h"
#include "util/status.h"

namespace paws {

/// A protected area discretized into 1x1 km cells, with static geospatial
/// feature rasters. Mirrors the paper's dataset processing (Sec. III-B):
/// terrain features (elevation, slope, forest cover), landscape features
/// (distance to rivers, roads, villages, patrol posts, park boundary) and
/// ecological features (animal density, net primary productivity).
class Park {
 public:
  Park(std::string name, GridB mask);

  const std::string& name() const { return name_; }
  int width() const { return mask_.width(); }
  int height() const { return mask_.height(); }

  /// Boolean raster: true for cells inside the protected area.
  const GridB& mask() const { return mask_; }

  /// Number of in-park cells (the paper's N).
  int num_cells() const { return static_cast<int>(cell_indices_.size()); }

  /// Flat grid indices of in-park cells, in row-major order. The position
  /// of an index in this list is the cell's dense id in [0, num_cells()).
  const std::vector<int>& cell_indices() const { return cell_indices_; }

  /// Dense id of the in-park cell with flat grid index `grid_index`, or -1.
  int DenseId(int grid_index) const;
  int DenseIdOf(const Cell& c) const { return DenseId(mask_.Index(c)); }

  /// Cell of dense id `id`.
  Cell CellOf(int id) const;

  /// Registers a static feature raster. Values at out-of-park cells are
  /// ignored. Returns the feature's column index.
  int AddFeature(std::string feature_name, GridD raster);

  int num_features() const { return static_cast<int>(features_.size()); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const GridD& feature(int f) const { return features_[f]; }
  StatusOr<int> FeatureIndex(const std::string& feature_name) const;

  /// Static feature vector (length num_features()) of a dense cell id.
  std::vector<double> FeatureVector(int dense_id) const;

  /// Patrol posts: cells where every patrol must start and end.
  void AddPatrolPost(const Cell& c);
  const std::vector<Cell>& patrol_posts() const { return patrol_posts_; }

 private:
  std::string name_;
  GridB mask_;
  std::vector<int> cell_indices_;
  std::vector<int> dense_id_;  // grid index -> dense id or -1
  std::vector<std::string> feature_names_;
  std::vector<GridD> features_;
  std::vector<Cell> patrol_posts_;
};

/// Serializes the full park geometry (mask, named feature rasters, patrol
/// posts) — the metadata a model snapshot needs to serve risk maps and
/// plans without the training scenario. Bit-exact on feature values.
void SavePark(const Park& park, ArchiveWriter* ar);
StatusOr<Park> LoadPark(ArchiveReader* ar);

}  // namespace paws

#endif  // PAWS_GEO_PARK_H_
