#include "geo/feature_plane.h"

#include <utility>

namespace paws {

std::vector<double> FeaturePlane::BuildRows(const Park& park,
                                            const std::vector<double>* lagged,
                                            const std::vector<int>& cell_ids) {
  std::vector<double> rows;
  rows.reserve(cell_ids.size() * (park.num_features() + 1));
  for (int id : cell_ids) {
    const std::vector<double> static_x = park.FeatureVector(id);
    rows.insert(rows.end(), static_x.begin(), static_x.end());
    rows.push_back(lagged != nullptr ? (*lagged)[id] : 0.0);
  }
  return rows;
}

FeaturePlane::FeaturePlane(const Park& park,
                           std::vector<double> lagged_effort)
    : num_cells_(park.num_cells()), row_width_(park.num_features() + 1) {
  if (lagged_effort.empty()) {
    lagged_effort.assign(num_cells_, 0.0);
  }
  CheckOrDie(static_cast<int>(lagged_effort.size()) == num_cells_,
             "FeaturePlane: lagged-effort layer does not match the park");
  lagged_effort_ = std::move(lagged_effort);
  std::vector<int> cell_ids(num_cells_);
  for (int id = 0; id < num_cells_; ++id) cell_ids[id] = id;
  rows_ = BuildRows(park, &lagged_effort_, cell_ids);
}

FeatureMatrixView FeaturePlane::GatherCells(const std::vector<int>& cell_ids,
                                            std::vector<double>* buf) const {
  buf->clear();
  buf->reserve(cell_ids.size() * row_width_);
  for (int id : cell_ids) {
    CheckOrDie(id >= 0 && id < num_cells_,
               "FeaturePlane::GatherCells: cell id out of range");
    const double* row = rows_.data() + static_cast<size_t>(id) * row_width_;
    buf->insert(buf->end(), row, row + row_width_);
  }
  return FeatureMatrixView::FromFlat(*buf, row_width_);
}

void FeaturePlane::UpdateLaggedEffort(std::vector<double> lagged_effort) {
  if (lagged_effort.empty()) {
    lagged_effort.assign(num_cells_, 0.0);
  }
  CheckOrDie(static_cast<int>(lagged_effort.size()) == num_cells_,
             "FeaturePlane::UpdateLaggedEffort: layer/park mismatch");
  lagged_effort_ = std::move(lagged_effort);
  // Only the trailing column carries time-variant state: a strided column
  // rewrite, no re-gather of the static feature rasters.
  double* column = rows_.data() + (row_width_ - 1);
  for (int id = 0; id < num_cells_; ++id) {
    column[static_cast<size_t>(id) * row_width_] = lagged_effort_[id];
  }
  ++coverage_version_;
}

}  // namespace paws
