#ifndef PAWS_GEO_GRID_H_
#define PAWS_GEO_GRID_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace paws {

/// Integer cell coordinate on a park grid. Each cell represents a
/// 1x1 km region, matching the paper's discretization.
struct Cell {
  int x = 0;
  int y = 0;

  friend bool operator==(const Cell& a, const Cell& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Dense 2-D raster stored row-major (y-major). Used for every per-cell
/// layer in the system: elevation, distances, patrol effort, risk maps.
template <typename T>
class Grid2D {
 public:
  Grid2D() : width_(0), height_(0) {}
  Grid2D(int width, int height, T fill = T())
      : width_(width),
        height_(height),
        data_(static_cast<size_t>(width) * height, fill) {
    CheckOrDie(width >= 0 && height >= 0, "Grid2D dimensions must be >= 0");
  }

  int width() const { return width_; }
  int height() const { return height_; }
  int size() const { return width_ * height_; }

  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }
  bool InBounds(const Cell& c) const { return InBounds(c.x, c.y); }

  /// Flat index of a cell; the inverse of CellAt.
  int Index(int x, int y) const {
    CheckOrDie(InBounds(x, y), "Grid2D::Index out of bounds");
    return y * width_ + x;
  }
  int Index(const Cell& c) const { return Index(c.x, c.y); }

  Cell CellAt(int index) const {
    CheckOrDie(index >= 0 && index < size(), "Grid2D::CellAt out of bounds");
    return Cell{index % width_, index / width_};
  }

  T& At(int x, int y) { return data_[Index(x, y)]; }
  const T& At(int x, int y) const { return data_[Index(x, y)]; }
  T& At(const Cell& c) { return At(c.x, c.y); }
  const T& At(const Cell& c) const { return At(c.x, c.y); }
  T& AtIndex(int i) {
    CheckOrDie(i >= 0 && i < size(), "Grid2D::AtIndex out of bounds");
    return data_[i];
  }
  const T& AtIndex(int i) const {
    CheckOrDie(i >= 0 && i < size(), "Grid2D::AtIndex out of bounds");
    return data_[i];
  }

  void Fill(T value) { data_.assign(data_.size(), value); }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

 private:
  int width_;
  int height_;
  std::vector<T> data_;
};

using GridD = Grid2D<double>;
using GridI = Grid2D<int>;
// Note: uint8_t rather than bool to avoid the std::vector<bool> proxy.
using GridB = Grid2D<uint8_t>;

/// 4-neighborhood of a cell clipped to grid bounds.
std::vector<Cell> Neighbors4(const Grid2D<double>& grid, const Cell& c);

/// Euclidean distance between cell centers, in km (1 cell = 1 km).
double CellDistance(const Cell& a, const Cell& b);

}  // namespace paws

#endif  // PAWS_GEO_GRID_H_
