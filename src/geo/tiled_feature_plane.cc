#include "geo/tiled_feature_plane.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace paws {

TileGeometry TileGeometry::For(int grid_width, int grid_height,
                               int tile_size) {
  CheckOrDie(tile_size > 0, "TileGeometry: tile_size must be positive");
  CheckOrDie(grid_width > 0 && grid_height > 0,
             "TileGeometry: empty grid");
  TileGeometry g;
  g.tile_size = tile_size;
  g.tiles_x = (grid_width + tile_size - 1) / tile_size;
  g.tiles_y = (grid_height + tile_size - 1) / tile_size;
  return g;
}

void TileGeometry::TileRect(int tile_id, int grid_width, int grid_height,
                            int* x0, int* y0, int* x1, int* y1) const {
  CheckOrDie(tile_id >= 0 && tile_id < num_tiles(),
             "TileGeometry: tile id out of range");
  const int tx = tile_id % tiles_x;
  const int ty = tile_id / tiles_x;
  *x0 = tx * tile_size;
  *y0 = ty * tile_size;
  *x1 = std::min(*x0 + tile_size, grid_width);
  *y1 = std::min(*y0 + tile_size, grid_height);
}

TiledFeaturePlane::TiledFeaturePlane(const Park& park,
                                     std::vector<double> lagged_effort,
                                     TiledPlaneOptions options)
    : num_cells_(park.num_cells()),
      row_width_(park.num_features() + 1),
      grid_width_(park.width()),
      grid_height_(park.height()),
      geometry_(TileGeometry::For(park.width(), park.height(),
                                  options.tile_size)),
      options_(options) {
  if (lagged_effort.empty()) {
    lagged_effort.assign(num_cells_, 0.0);
  }
  CheckOrDie(static_cast<int>(lagged_effort.size()) == num_cells_,
             "TiledFeaturePlane: lagged-effort layer does not match the park");
  lagged_effort_ = std::move(lagged_effort);
  tile_versions_.assign(geometry_.num_tiles(), 0);
}

uint64_t TiledFeaturePlane::tile_coverage_version(int tile_id) const {
  CheckOrDie(tile_id >= 0 && tile_id < geometry_.num_tiles(),
             "TiledFeaturePlane: tile id out of range");
  return tile_versions_[tile_id];
}

void TiledFeaturePlane::TileCellIds(const Park& park, int tile_id,
                                    std::vector<int>* out) const {
  CheckOrDie(park.num_cells() == num_cells_ &&
                 park.width() == grid_width_ &&
                 park.height() == grid_height_,
             "TiledFeaturePlane: park does not match this plane");
  int x0, y0, x1, y1;
  geometry_.TileRect(tile_id, grid_width_, grid_height_, &x0, &y0, &x1, &y1);
  out->clear();
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      const int id = park.DenseIdOf(Cell{x, y});
      if (id >= 0) out->push_back(id);
    }
  }
}

std::shared_ptr<TiledFeaturePlane::Tile> TiledFeaturePlane::Materialize(
    const Park& park, int tile_id) const {
  auto tile = std::make_shared<Tile>();
  tile->tile_id = tile_id;
  tile->coverage_version = tile_versions_[tile_id];
  TileCellIds(park, tile_id, &tile->cell_ids);
  // Row assembly mirrors FeaturePlane::BuildRows cell for cell: the static
  // raster features in park order, then the lagged-coverage column. Same
  // source doubles, same order — byte-identical rows by construction.
  tile->rows.reserve(tile->cell_ids.size() * row_width_);
  for (int id : tile->cell_ids) {
    const std::vector<double> static_x = park.FeatureVector(id);
    tile->rows.insert(tile->rows.end(), static_x.begin(), static_x.end());
    tile->rows.push_back(lagged_effort_[id]);
  }
  return tile;
}

std::shared_ptr<const TiledFeaturePlane::Tile> TiledFeaturePlane::GetTile(
    const Park& park, int tile_id) const {
  CheckOrDie(tile_id >= 0 && tile_id < geometry_.num_tiles(),
             "TiledFeaturePlane: tile id out of range");
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    const auto it = pool_index_.find(tile_id);
    if (it != pool_index_.end()) {
      pool_lru_.splice(pool_lru_.begin(), pool_lru_, it->second);
      ++pool_hits_;
      return *it->second;
    }
    ++pool_misses_;
  }
  // Materialize outside the lock: a racing miss on the same tile builds
  // bit-identical rows, and the loser's insert below just refreshes the
  // entry — cheaper than serializing every materialization.
  std::shared_ptr<const Tile> tile = Materialize(park, tile_id);
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    const auto it = pool_index_.find(tile_id);
    if (it != pool_index_.end()) {
      // The racing winner's tile is already indexed; serve that one so
      // the pool accounts each tile id once.
      pool_lru_.splice(pool_lru_.begin(), pool_lru_, it->second);
      return *it->second;
    }
    pool_lru_.push_front(tile);
    pool_index_.emplace(tile_id, pool_lru_.begin());
    pool_bytes_ += tile->bytes();
    ShrinkToBudgetLocked();
  }
  return tile;
}

void TiledFeaturePlane::EvictLocked(int tile_id) const {
  const auto it = pool_index_.find(tile_id);
  if (it == pool_index_.end()) return;
  pool_bytes_ -= (*it->second)->bytes();
  pool_lru_.erase(it->second);
  pool_index_.erase(it);
  ++pool_evictions_;
}

void TiledFeaturePlane::ShrinkToBudgetLocked() const {
  if (options_.pool_budget_bytes == 0) return;
  // Always keep the most recent tile: a budget smaller than one tile must
  // still serve (the pool degrades to materialize-per-request).
  while (pool_bytes_ > options_.pool_budget_bytes && pool_lru_.size() > 1) {
    const std::shared_ptr<const Tile>& victim = pool_lru_.back();
    pool_bytes_ -= victim->bytes();
    pool_index_.erase(victim->tile_id);
    pool_lru_.pop_back();
    ++pool_evictions_;
  }
}

void TiledFeaturePlane::UpdateLaggedEffort(
    const Park& park, std::vector<double> lagged_effort) {
  if (lagged_effort.empty()) {
    lagged_effort.assign(num_cells_, 0.0);
  }
  CheckOrDie(static_cast<int>(lagged_effort.size()) == num_cells_,
             "TiledFeaturePlane::UpdateLaggedEffort: layer/park mismatch");
  CheckOrDie(park.num_cells() == num_cells_ &&
                 park.width() == grid_width_ &&
                 park.height() == grid_height_,
             "TiledFeaturePlane: park does not match this plane");
  ++coverage_version_;
  // Diff the layers cell by cell (by bit pattern: a -0.0 -> 0.0 flip is a
  // row change even though == would miss it) and mark the containing
  // tiles dirty. Only dirty tiles pay: version bump + pool eviction.
  std::vector<bool> dirty(geometry_.num_tiles(), false);
  const std::vector<int>& indices = park.cell_indices();
  for (int id = 0; id < num_cells_; ++id) {
    const double a = lagged_effort_[id];
    const double b = lagged_effort[id];
    if (std::memcmp(&a, &b, sizeof(double)) == 0) continue;
    const int grid_index = indices[id];
    dirty[geometry_.TileOf(grid_index % grid_width_,
                           grid_index / grid_width_)] = true;
  }
  lagged_effort_ = std::move(lagged_effort);
  std::lock_guard<std::mutex> lock(pool_mu_);
  for (int t = 0; t < geometry_.num_tiles(); ++t) {
    if (!dirty[t]) continue;
    tile_versions_[t] = coverage_version_;
    // Evict instead of patching in place: in-flight readers may still
    // hold the old tile (shared_ptr), and they must keep seeing the
    // coverage layer they started under.
    EvictLocked(t);
  }
}

std::vector<double> TiledFeaturePlane::BuildAllRows(const Park& park) const {
  std::vector<double> rows;
  rows.resize(static_cast<size_t>(num_cells_) * row_width_);
  // Tiles partition the grid, and within a tile cells stream in grid
  // row-major order — so scattering each tile's rows by dense id fills
  // the buffer exactly once per cell.
  for (int t = 0; t < geometry_.num_tiles(); ++t) {
    const std::shared_ptr<const Tile> tile = GetTile(park, t);
    for (size_t i = 0; i < tile->cell_ids.size(); ++i) {
      std::copy(tile->rows.begin() + i * row_width_,
                tile->rows.begin() + (i + 1) * row_width_,
                rows.begin() +
                    static_cast<size_t>(tile->cell_ids[i]) * row_width_);
    }
  }
  return rows;
}

FeatureMatrixView TiledFeaturePlane::GatherCells(
    const Park& park, const std::vector<int>& cell_ids,
    std::vector<double>* buf) const {
  CheckOrDie(park.num_cells() == num_cells_,
             "TiledFeaturePlane: park does not match this plane");
  buf->clear();
  buf->reserve(cell_ids.size() * row_width_);
  for (int id : cell_ids) {
    CheckOrDie(id >= 0 && id < num_cells_,
               "TiledFeaturePlane::GatherCells: cell id out of range");
    const std::vector<double> static_x = park.FeatureVector(id);
    buf->insert(buf->end(), static_x.begin(), static_x.end());
    buf->push_back(lagged_effort_[id]);
  }
  return FeatureMatrixView::FromFlat(*buf, row_width_);
}

TilePoolStats TiledFeaturePlane::pool_stats() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  TilePoolStats stats;
  stats.resident_tiles = pool_lru_.size();
  stats.resident_bytes = pool_bytes_;
  stats.hits = pool_hits_;
  stats.misses = pool_misses_;
  stats.evictions = pool_evictions_;
  return stats;
}

}  // namespace paws
