#include "geo/raster_ops.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

namespace paws {

GridD DistanceTransform(const GridB& mask, const std::vector<Cell>& sources) {
  const int w = mask.width();
  const int h = mask.height();
  const double kInf = std::numeric_limits<double>::infinity();
  GridD dist(w, h, kInf);
  std::deque<Cell> queue;
  for (const Cell& s : sources) {
    if (!mask.InBounds(s) || !mask.At(s)) continue;
    if (dist.At(s) == 0.0) continue;
    dist.At(s) = 0.0;
    queue.push_back(s);
  }
  static const int kDx[4] = {1, -1, 0, 0};
  static const int kDy[4] = {0, 0, 1, -1};
  while (!queue.empty()) {
    const Cell c = queue.front();
    queue.pop_front();
    const double d = dist.At(c);
    for (int k = 0; k < 4; ++k) {
      const Cell n{c.x + kDx[k], c.y + kDy[k]};
      if (!mask.InBounds(n) || !mask.At(n)) continue;
      if (dist.At(n) > d + 1.0) {
        dist.At(n) = d + 1.0;
        queue.push_back(n);
      }
    }
  }
  return dist;
}

void RasterizePolyline(const std::vector<Cell>& vertices, GridB* out) {
  CheckOrDie(out != nullptr, "RasterizePolyline: null output");
  if (vertices.empty()) return;
  auto clamp_cell = [&](Cell c) {
    c.x = std::clamp(c.x, 0, out->width() - 1);
    c.y = std::clamp(c.y, 0, out->height() - 1);
    return c;
  };
  Cell prev = clamp_cell(vertices[0]);
  out->At(prev) = true;
  for (size_t i = 1; i < vertices.size(); ++i) {
    Cell cur = clamp_cell(vertices[i]);
    // Bresenham line from prev to cur.
    int x0 = prev.x, y0 = prev.y;
    const int x1 = cur.x, y1 = cur.y;
    const int dx = std::abs(x1 - x0), dy = -std::abs(y1 - y0);
    const int sx = x0 < x1 ? 1 : -1, sy = y0 < y1 ? 1 : -1;
    int err = dx + dy;
    while (true) {
      out->At(x0, y0) = true;
      if (x0 == x1 && y0 == y1) break;
      const int e2 = 2 * err;
      if (e2 >= dy) {
        err += dy;
        x0 += sx;
      }
      if (e2 <= dx) {
        err += dx;
        y0 += sy;
      }
    }
    prev = cur;
  }
}

GridD BoxBlur(const GridD& in, const GridB& mask, int radius) {
  CheckOrDie(in.width() == mask.width() && in.height() == mask.height(),
             "BoxBlur: grid/mask shape mismatch");
  CheckOrDie(radius >= 0, "BoxBlur: radius must be >= 0");
  GridD out(in.width(), in.height(), 0.0);
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      if (!mask.At(x, y)) continue;
      double sum = 0.0;
      int count = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          const int nx = x + dx, ny = y + dy;
          if (!in.InBounds(nx, ny) || !mask.At(nx, ny)) continue;
          sum += in.At(nx, ny);
          ++count;
        }
      }
      out.At(x, y) = count > 0 ? sum / count : 0.0;
    }
  }
  return out;
}

GridD GradientMagnitude(const GridD& in) {
  GridD out(in.width(), in.height(), 0.0);
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      const int xl = std::max(0, x - 1), xr = std::min(in.width() - 1, x + 1);
      const int yl = std::max(0, y - 1), yr = std::min(in.height() - 1, y + 1);
      const double gx = (in.At(xr, y) - in.At(xl, y)) / std::max(1, xr - xl);
      const double gy = (in.At(x, yr) - in.At(x, yl)) / std::max(1, yr - yl);
      out.At(x, y) = std::sqrt(gx * gx + gy * gy);
    }
  }
  return out;
}

void RescaleInPlace(GridD* grid, const GridB& mask, double lo, double hi) {
  CheckOrDie(grid != nullptr, "RescaleInPlace: null grid");
  CheckOrDie(hi >= lo, "RescaleInPlace: hi < lo");
  double vmin = std::numeric_limits<double>::infinity();
  double vmax = -vmin;
  for (int i = 0; i < grid->size(); ++i) {
    if (!mask.AtIndex(i)) continue;
    vmin = std::min(vmin, grid->AtIndex(i));
    vmax = std::max(vmax, grid->AtIndex(i));
  }
  if (!(vmax > vmin)) {
    for (int i = 0; i < grid->size(); ++i) {
      if (mask.AtIndex(i)) grid->AtIndex(i) = lo;
    }
    return;
  }
  const double scale = (hi - lo) / (vmax - vmin);
  for (int i = 0; i < grid->size(); ++i) {
    if (mask.AtIndex(i)) {
      grid->AtIndex(i) = lo + (grid->AtIndex(i) - vmin) * scale;
    }
  }
}

std::string AsciiHeatmap(const GridD& grid, const GridB& mask, int max_width) {
  static const char kRamp[] = " .:-=+*#%@";
  const int levels = 9;
  double vmin = std::numeric_limits<double>::infinity();
  double vmax = -vmin;
  for (int i = 0; i < grid.size(); ++i) {
    if (!mask.AtIndex(i)) continue;
    vmin = std::min(vmin, grid.AtIndex(i));
    vmax = std::max(vmax, grid.AtIndex(i));
  }
  if (!(vmax > vmin)) vmax = vmin + 1.0;
  // Downsample columns/rows if the grid is wider than max_width.
  const int step = std::max(1, (grid.width() + max_width - 1) / max_width);
  std::string out;
  for (int y = 0; y < grid.height(); y += step) {
    for (int x = 0; x < grid.width(); x += step) {
      if (!mask.At(x, y)) {
        out += ' ';
        continue;
      }
      const double t = (grid.At(x, y) - vmin) / (vmax - vmin);
      const int idx = 1 + std::min(levels - 1,
                                   static_cast<int>(t * (levels - 1) + 0.5));
      out += kRamp[idx];
    }
    out += '\n';
  }
  return out;
}

}  // namespace paws
