#ifndef PAWS_GEO_RASTER_OPS_H_
#define PAWS_GEO_RASTER_OPS_H_

#include <string>
#include <vector>

#include "geo/grid.h"

namespace paws {

/// Multi-source grid distance transform: the 4-neighbor BFS distance (in km)
/// from each cell to the nearest source cell. Cells where `mask` is false
/// are excluded (distance = +inf). Sources outside the mask are ignored.
/// If there are no valid sources, every distance is +inf.
GridD DistanceTransform(const GridB& mask, const std::vector<Cell>& sources);

/// Rasterizes a polyline (sequence of cells connected by straight segments)
/// onto a boolean grid using Bresenham's algorithm. Out-of-bounds vertices
/// are clamped to the grid.
void RasterizePolyline(const std::vector<Cell>& vertices, GridB* out);

/// Mean filter over a (2r+1)x(2r+1) window, respecting `mask` (cells
/// outside the mask contribute nothing and receive 0). This implements the
/// paper's "convolving the risk map" step used to build 3x3 km blocks.
GridD BoxBlur(const GridD& in, const GridB& mask, int radius);

/// Gradient magnitude (central differences) of a raster; used as the
/// "slope" feature derived from elevation.
GridD GradientMagnitude(const GridD& in);

/// Linearly rescales values at masked cells to [lo, hi]. If the raster is
/// constant over the mask, all masked cells get lo.
void RescaleInPlace(GridD* grid, const GridB& mask, double lo, double hi);

/// Renders a raster as an ASCII heatmap (one character per cell, darker
/// characters = larger values); rows are emitted top-to-bottom. Cells
/// outside `mask` render as spaces. Intended for examples and bench output.
std::string AsciiHeatmap(const GridD& grid, const GridB& mask,
                         int max_width = 70);

}  // namespace paws

#endif  // PAWS_GEO_RASTER_OPS_H_
