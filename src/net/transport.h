#ifndef PAWS_NET_TRANSPORT_H_
#define PAWS_NET_TRANSPORT_H_

#include <cstddef>
#include <memory>
#include <string>

#include "util/status.h"

namespace paws {

/// The byte-stream seam under WireClient: one connection's connect, send
/// and receive. The seam exists so a schedule-driven FaultInjector can
/// interpose on exactly the operations the kernel would otherwise own —
/// every chaos failure mode (connect refusal, latency, mid-frame
/// truncation, byte corruption, reset, one-way stall) becomes a
/// deterministic Transport wrapper instead of an irreproducible network
/// accident (see net/fault_injector.h).
///
/// Contract:
///  - Connect resolves `host` and establishes the connection within
///    `timeout_ms` (EINTR never shortens the wait — the implementation
///    re-polls with the remaining budget).
///  - Send delivers the WHOLE buffer before `deadline_ms` elapses,
///    absorbing partial writes, EAGAIN and EINTR internally; a non-OK
///    return leaves the stream position undefined and the caller must
///    Close().
///  - Recv waits up to `timeout_ms` for data and returns the byte count
///    read (> 0), or 0 when the wait elapsed / was interrupted with
///    nothing to read (the caller owns the end-to-end deadline and just
///    loops), or a Status for EOF and hard socket errors.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Status Connect(const std::string& host, int port,
                         int timeout_ms) = 0;
  virtual bool connected() const = 0;
  virtual void Close() = 0;
  virtual Status Send(const char* data, size_t len, int deadline_ms) = 0;
  virtual StatusOr<size_t> Recv(char* buf, size_t len, int timeout_ms) = 0;
};

/// The real thing: a non-blocking TCP socket (TCP_NODELAY, poll-driven
/// timeouts), extracted verbatim from the original WireClient socket code
/// plus the EINTR fixes the chaos suite regression-tests.
std::unique_ptr<Transport> MakeTcpTransport();

}  // namespace paws

#endif  // PAWS_NET_TRANSPORT_H_
