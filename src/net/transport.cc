#include "net/transport.h"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

namespace paws {
namespace {

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

using Clock = std::chrono::steady_clock;

int MsLeft(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  if (left < 0) return 0;
  if (left > 1000000000) return 1000000000;
  return static_cast<int>(left);
}

Status SetNonBlocking(int fd, bool non_blocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Internal("fcntl(F_GETFL) failed");
  if (non_blocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::Internal("fcntl(F_SETFL) failed");
  }
  return Status::OK();
}

/// poll() that survives signal interruption: EINTR re-polls with the
/// remaining budget instead of being misreported as a timeout (the gap
/// the fault-injection audit found in the original connect path).
int PollUninterrupted(struct pollfd* pfd, Clock::time_point deadline) {
  while (true) {
    const int left = MsLeft(deadline);
    const int rc = ::poll(pfd, 1, left);
    if (rc < 0 && errno == EINTR) {
      if (MsLeft(deadline) <= 0) return 0;
      continue;
    }
    return rc;
  }
}

class TcpTransport final : public Transport {
 public:
  ~TcpTransport() override { Close(); }

  Status Connect(const std::string& host, int port, int timeout_ms) override {
    Close();
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 1000000000);

    struct addrinfo hints;
    ::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* result = nullptr;
    const std::string port_str = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
    if (rc != 0 || result == nullptr) {
      return Status::Internal("getaddrinfo failed for " + host + ": " +
                              std::string(::gai_strerror(rc)));
    }

    Status last = Status::Internal("no addresses resolved for " + host);
    for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
      int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) {
        last = Status::Internal("socket() failed");
        continue;
      }
      Status nb = SetNonBlocking(fd, true);
      if (!nb.ok()) {
        ::close(fd);
        last = nb;
        continue;
      }
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
      if (rc != 0 && errno == EINPROGRESS) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        rc = PollUninterrupted(&pfd, deadline);
        if (rc <= 0) {
          ::close(fd);
          last = Status::ResourceExhausted("connect to " + host + ":" +
                                           port_str + " timed out");
          continue;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
          ::close(fd);
          last = Status::Internal("connect to " + host + ":" + port_str +
                                  " failed: " + std::string(::strerror(err)));
          continue;
        }
      } else if (rc != 0) {
        int err = errno;
        ::close(fd);
        last = Status::Internal("connect to " + host + ":" + port_str +
                                " failed: " + std::string(::strerror(err)));
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      ::freeaddrinfo(result);
      return Status::OK();
    }
    ::freeaddrinfo(result);
    return last;
  }

  bool connected() const override { return fd_ >= 0; }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  Status Send(const char* data, size_t len, int deadline_ms) override {
    if (fd_ < 0) return Status::FailedPrecondition("transport not connected");
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(
                           deadline_ms > 0 ? deadline_ms : 1000000000);
    size_t sent = 0;
    while (sent < len) {
      ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        struct pollfd pfd;
        pfd.fd = fd_;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        if (MsLeft(deadline) <= 0) {
          return Status::ResourceExhausted("request timed out while sending");
        }
        int rc = PollUninterrupted(&pfd, deadline);
        if (rc < 0) {
          return Status::Internal("poll failed while sending");
        }
        if (rc == 0) {
          return Status::ResourceExhausted("request timed out while sending");
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return Status::Internal("connection broken while sending");
    }
    return Status::OK();
  }

  StatusOr<size_t> Recv(char* buf, size_t len, int timeout_ms) override {
    if (fd_ < 0) return Status::FailedPrecondition("transport not connected");
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
    int rc = PollUninterrupted(&pfd, deadline);
    if (rc < 0) return Status::Internal("poll failed while receiving");
    if (rc == 0) return static_cast<size_t>(0);
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n > 0) return static_cast<size_t>(n);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return static_cast<size_t>(0);
    }
    return Status::Internal("connection closed while waiting for response");
  }

 private:
  int fd_ = -1;
};

}  // namespace

std::unique_ptr<Transport> MakeTcpTransport() {
  return std::make_unique<TcpTransport>();
}

}  // namespace paws
