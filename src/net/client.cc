#include "net/client.h"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "core/risk_map.h"
#include "ml/effort_curve.h"
#include "plan/planner.h"
#include "util/archive.h"

namespace paws {
namespace {

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

using Clock = std::chrono::steady_clock;

int MsLeft(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  if (left < 0) return 0;
  if (left > 1000000000) return 1000000000;
  return static_cast<int>(left);
}

Status SetNonBlocking(int fd, bool non_blocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Internal("fcntl(F_GETFL) failed");
  if (non_blocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::Internal("fcntl(F_SETFL) failed");
  }
  return Status::OK();
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

int JitteredBackoffMs(int base_ms, double jitter_pct, double unit_uniform) {
  if (base_ms <= 0 || jitter_pct <= 0.0) return base_ms < 0 ? 0 : base_ms;
  const double factor = 1.0 - jitter_pct + 2.0 * jitter_pct * unit_uniform;
  const double jittered = static_cast<double>(base_ms) * factor;
  return jittered < 0.0 ? 0 : static_cast<int>(jittered);
}

WireClient::WireClient(ClientOptions options)
    : options_(std::move(options)), parser_(options_.max_frame_bytes) {
  jitter_state_ = options_.backoff_jitter_seed;
  if (jitter_state_ == 0) {
    // Distinct per client even when many are constructed the same
    // nanosecond — the whole point is that a fleet of routers must not
    // share one retry schedule.
    jitter_state_ =
        static_cast<uint64_t>(
            Clock::now().time_since_epoch().count()) ^
        (static_cast<uint64_t>(reinterpret_cast<uintptr_t>(this)) << 1);
  }
}

double WireClient::NextJitterUniform() {
  return static_cast<double>(SplitMix64(&jitter_state_) >> 11) *
         (1.0 / 9007199254740992.0);  // 53-bit mantissa / 2^53
}

WireClient::~WireClient() { Close(); }

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // A half-received response must not leak into the next exchange.
  parser_ = FrameParser(options_.max_frame_bytes);
}

Status WireClient::Connect(const std::string& host, int port) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " + std::to_string(port));
  }
  host_ = host;
  port_ = port;
  Close();
  return EnsureConnected();
}

Status WireClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  if (port_ < 0) {
    return Status::FailedPrecondition("WireClient: Connect was never called");
  }
  Status last = Status::Internal("connect never attempted");
  int backoff_ms = options_.backoff_initial_ms;
  int attempts = options_.max_connect_attempts < 1
                     ? 1
                     : options_.max_connect_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          JitteredBackoffMs(backoff_ms, options_.backoff_jitter_pct,
                            NextJitterUniform())));
      backoff_ms *= 2;
    }
    last = ConnectOnce();
    if (last.ok()) return Status::OK();
  }
  return last;
}

Status WireClient::ConnectOnce() {
  struct addrinfo hints;
  ::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port_);
  int rc = ::getaddrinfo(host_.c_str(), port_str.c_str(), &hints, &result);
  if (rc != 0 || result == nullptr) {
    return Status::Internal("getaddrinfo failed for " + host_ + ": " +
                         std::string(::gai_strerror(rc)));
  }

  Status last = Status::Internal("no addresses resolved for " + host_);
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal("socket() failed");
      continue;
    }
    Status nb = SetNonBlocking(fd, true);
    if (!nb.ok()) {
      ::close(fd);
      last = nb;
      continue;
    }
    rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      rc = ::poll(&pfd, 1, options_.connect_timeout_ms);
      if (rc <= 0) {
        ::close(fd);
        last = Status::ResourceExhausted("connect to " + host_ + ":" + port_str +
                                      " timed out");
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        ::close(fd);
        last = Status::Internal("connect to " + host_ + ":" + port_str +
                             " failed: " + std::string(::strerror(err)));
        continue;
      }
    } else if (rc != 0) {
      int err = errno;
      ::close(fd);
      last = Status::Internal("connect to " + host_ + ":" + port_str +
                           " failed: " + std::string(::strerror(err)));
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;
    parser_ = FrameParser(options_.max_frame_bytes);
    ::freeaddrinfo(result);
    return Status::OK();
  }
  ::freeaddrinfo(result);
  return last;
}

Status WireClient::SendAll(const std::string& bytes, int deadline_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         deadline_ms > 0 ? deadline_ms : 1000000000);
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      int left = MsLeft(deadline);
      if (left <= 0) {
        return Status::ResourceExhausted("request timed out while sending");
      }
      int rc = ::poll(&pfd, 1, left);
      if (rc < 0 && errno != EINTR) {
        return Status::Internal("poll failed while sending");
      }
      if (rc == 0) {
        return Status::ResourceExhausted("request timed out while sending");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal("connection broken while sending");
  }
  return Status::OK();
}

StatusOr<Frame> WireClient::Call(Opcode opcode, std::string payload) {
  PAWS_RETURN_IF_ERROR(EnsureConnected());

  Frame request;
  request.request_id = next_request_id_++;
  request.opcode = static_cast<uint32_t>(opcode);
  request.payload = std::move(payload);
  const std::string bytes = EncodeFrame(request);

  Status sent = SendAll(bytes, options_.request_timeout_ms);
  if (!sent.ok()) {
    Close();
    return sent;
  }

  const auto deadline =
      Clock::now() +
      std::chrono::milliseconds(options_.request_timeout_ms > 0
                                    ? options_.request_timeout_ms
                                    : 1000000000);
  char buf[65536];
  while (true) {
    // Drain any already-buffered frame first.
    Frame response;
    StatusOr<bool> got = parser_.Next(&response);
    if (!got.ok()) {
      Close();
      return got.status();
    }
    if (*got) {
      if (response.request_id != request.request_id) {
        // A response to an abandoned (timed-out) earlier request can only
        // appear if Close() was skipped — treat it as a protocol error.
        Close();
        return StatusOr<Frame>(
            Status::Internal("response id does not match request id"));
      }
      return response;
    }

    int left = MsLeft(deadline);
    if (left <= 0) {
      Close();
      return StatusOr<Frame>(
          Status::ResourceExhausted("request timed out waiting for response"));
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = ::poll(&pfd, 1, left);
    if (rc < 0) {
      if (errno == EINTR) continue;
      Close();
      return StatusOr<Frame>(Status::Internal("poll failed while receiving"));
    }
    if (rc == 0) {
      Close();
      return StatusOr<Frame>(
          Status::ResourceExhausted("request timed out waiting for response"));
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      parser_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    Close();
    return StatusOr<Frame>(
        Status::Internal("connection closed while waiting for response"));
  }
}

ParkClient::ParkClient(ClientOptions options) : client_(std::move(options)) {}

Status ParkClient::Connect(const std::string& host, int port) {
  return client_.Connect(host, port);
}

StatusOr<std::string> ParkClient::CallOk(Opcode opcode, std::string payload) {
  // Until a well-formed status frame arrives, every failure mode here is
  // the transport's fault: broken connection, timeout, protocol garbage.
  last_error_transport_ = true;
  StatusOr<Frame> called = client_.Call(opcode, std::move(payload));
  if (!called.ok()) return called.status();
  Frame& response = *called;
  if (response.opcode == static_cast<uint32_t>(Opcode::kStatusResponse)) {
    Status carried;
    PAWS_RETURN_IF_ERROR(DecodeStatusPayload(response.payload, &carried));
    if (carried.ok()) {
      return StatusOr<std::string>(
          Status::Internal("server sent a status frame carrying OK"));
    }
    // A decoded status frame is the server *answering* — the one
    // non-transport failure shape (FleetRouter must not fail over on it).
    last_error_transport_ = false;
    return StatusOr<std::string>(carried);
  }
  if (response.opcode != static_cast<uint32_t>(Opcode::kOkResponse)) {
    return StatusOr<std::string>(Status::Internal(
        "unexpected response opcode " + OpcodeName(response.opcode)));
  }
  last_error_transport_ = false;
  return std::move(response.payload);
}

StatusOr<RiskMaps> ParkClient::RiskMap(const std::string& park_id,
                                       double assumed_effort) {
  RiskMapRequest request;
  request.park_id = park_id;
  request.assumed_effort = assumed_effort;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kRiskMap, EncodeRiskMapRequest(request)));
  return TagDecode(DecodeRiskMapsPayload(payload));
}

StatusOr<std::vector<StatusOr<RiskMaps>>> ParkClient::RiskMapBatch(
    const std::vector<RiskMapRequest>& requests) {
  RiskMapBatchRequest request;
  request.requests = requests;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kRiskMapBatch, EncodeRiskMapBatchRequest(request)));
  return TagDecode(DecodeRiskMapBatchPayload(payload));
}

StatusOr<EffortCurveTable> ParkClient::CellCurves(
    const std::string& park_id, const std::vector<int>& cell_ids,
    std::vector<double> effort_grid) {
  CellCurvesRequest request;
  request.park_id = park_id;
  request.cell_ids = cell_ids;
  request.effort_grid = std::move(effort_grid);
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kCellCurves, EncodeCellCurvesRequest(request)));
  return TagDecode(DecodeEffortCurveTablePayload(payload));
}

StatusOr<PatrolPlan> ParkClient::PlanForPost(const std::string& park_id,
                                             int post_index,
                                             const PlannerConfig& config,
                                             const RobustParams& robust) {
  PlanForPostRequest request;
  request.park_id = park_id;
  request.post_index = post_index;
  request.config = config;
  request.robust = robust;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kPlanForPost, EncodePlanForPostRequest(request)));
  return TagDecode(DecodePatrolPlanPayload(payload));
}

Status ParkClient::SwapSnapshot(const std::string& park_id,
                                const std::string& snapshot_bytes) {
  SwapSnapshotRequest request;
  request.park_id = park_id;
  request.snapshot_bytes = snapshot_bytes;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kSwapSnapshot, EncodeSwapSnapshotRequest(request)));
  (void)payload;
  return Status::OK();
}

StatusOr<ServerStatsReport> ParkClient::Stats(const std::string& park_id) {
  StatsRequest request;
  request.park_id = park_id;
  PAWS_ASSIGN_OR_RETURN(std::string payload,
                        CallOk(Opcode::kStats, EncodeStatsRequest(request)));
  return TagDecode(DecodeStatsReportPayload(payload));
}

}  // namespace paws
