#include "net/client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "core/risk_map.h"
#include "ml/effort_curve.h"
#include "net/fault_injector.h"
#include "plan/planner.h"
#include "util/archive.h"

namespace paws {
namespace {

using Clock = std::chrono::steady_clock;

int MsLeft(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  if (left < 0) return 0;
  if (left > 1000000000) return 1000000000;
  return static_cast<int>(left);
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

int JitteredBackoffMs(int base_ms, double jitter_pct, double unit_uniform) {
  if (base_ms <= 0 || jitter_pct <= 0.0) return base_ms < 0 ? 0 : base_ms;
  const double factor = 1.0 - jitter_pct + 2.0 * jitter_pct * unit_uniform;
  const double jittered = static_cast<double>(base_ms) * factor;
  return jittered < 0.0 ? 0 : static_cast<int>(jittered);
}

WireClient::WireClient(ClientOptions options)
    : options_(std::move(options)), parser_(options_.max_frame_bytes) {
  jitter_state_ = options_.backoff_jitter_seed;
  if (jitter_state_ == 0) {
    // Distinct per client even when many are constructed the same
    // nanosecond — the whole point is that a fleet of routers must not
    // share one retry schedule.
    jitter_state_ =
        static_cast<uint64_t>(
            Clock::now().time_since_epoch().count()) ^
        (static_cast<uint64_t>(reinterpret_cast<uintptr_t>(this)) << 1);
  }
}

double WireClient::NextJitterUniform() {
  return static_cast<double>(SplitMix64(&jitter_state_) >> 11) *
         (1.0 / 9007199254740992.0);  // 53-bit mantissa / 2^53
}

WireClient::~WireClient() { Close(); }

void WireClient::Close() {
  if (transport_ != nullptr) transport_->Close();
  // A half-received response must not leak into the next exchange.
  parser_ = FrameParser(options_.max_frame_bytes);
}

int WireClient::DeadlineBudgetMs(int cap) const {
  if (!has_call_deadline_) return cap;
  const int left = MsLeft(call_deadline_);
  if (cap <= 0) return left;
  return left < cap ? left : cap;
}

Status WireClient::Connect(const std::string& host, int port) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " + std::to_string(port));
  }
  host_ = host;
  port_ = port;
  Close();
  // The transport is (re)built per endpoint so the fault injector's
  // per-endpoint rules key on the right "host:port" label.
  transport_ = MakeTcpTransport();
  if (options_.fault_injector != nullptr) {
    transport_ = MakeFaultInjectedTransport(
        std::move(transport_), options_.fault_injector,
        host_ + ":" + std::to_string(port_));
  }
  return EnsureConnected();
}

Status WireClient::EnsureConnected() {
  if (connected()) return Status::OK();
  if (port_ < 0 || transport_ == nullptr) {
    return Status::FailedPrecondition("WireClient: Connect was never called");
  }
  Status last = Status::Internal("connect never attempted");
  int backoff_ms = options_.backoff_initial_ms;
  int attempts = options_.max_connect_attempts < 1
                     ? 1
                     : options_.max_connect_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      int sleep_ms = JitteredBackoffMs(backoff_ms, options_.backoff_jitter_pct,
                                       NextJitterUniform());
      if (has_call_deadline_) {
        const int left = MsLeft(call_deadline_);
        if (sleep_ms > left) sleep_ms = left;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff_ms *= 2;
    }
    if (has_call_deadline_ && MsLeft(call_deadline_) <= 0) {
      return Status::ResourceExhausted(
          "call deadline expired before connecting");
    }
    last = ConnectOnce();
    if (last.ok()) return Status::OK();
  }
  return last;
}

Status WireClient::ConnectOnce() {
  const Status connected = transport_->Connect(
      host_, port_, DeadlineBudgetMs(options_.connect_timeout_ms));
  if (connected.ok()) parser_ = FrameParser(options_.max_frame_bytes);
  return connected;
}

StatusOr<Frame> WireClient::Call(Opcode opcode, std::string payload) {
  if (has_call_deadline_ && MsLeft(call_deadline_) <= 0) {
    return StatusOr<Frame>(Status::ResourceExhausted(
        "call deadline expired before the request was sent"));
  }
  PAWS_RETURN_IF_ERROR(EnsureConnected());

  Frame request;
  request.request_id = next_request_id_++;
  request.opcode = static_cast<uint32_t>(opcode);
  request.payload = std::move(payload);
  const std::string bytes = EncodeFrame(request);

  auto deadline =
      Clock::now() +
      std::chrono::milliseconds(options_.request_timeout_ms > 0
                                    ? options_.request_timeout_ms
                                    : 1000000000);
  if (has_call_deadline_ && call_deadline_ < deadline) {
    deadline = call_deadline_;
  }

  Status sent = transport_->Send(bytes.data(), bytes.size(), MsLeft(deadline));
  if (!sent.ok()) {
    Close();
    return sent;
  }

  char buf[65536];
  while (true) {
    // Drain any already-buffered frame first.
    Frame response;
    StatusOr<bool> got = parser_.Next(&response);
    if (!got.ok()) {
      Close();
      return got.status();
    }
    if (*got) {
      if (response.request_id != request.request_id) {
        // A response to an abandoned (timed-out) earlier request can only
        // appear if Close() was skipped — treat it as a protocol error.
        Close();
        return StatusOr<Frame>(
            Status::Internal("response id does not match request id"));
      }
      return response;
    }

    const int left = MsLeft(deadline);
    if (left <= 0) {
      Close();
      return StatusOr<Frame>(
          Status::ResourceExhausted("request timed out waiting for response"));
    }
    StatusOr<size_t> received = transport_->Recv(buf, sizeof(buf), left);
    if (!received.ok()) {
      Close();
      return received.status();
    }
    if (*received > 0) parser_.Append(buf, *received);
  }
}

ParkClient::ParkClient(ClientOptions options) : client_(std::move(options)) {}

Status ParkClient::Connect(const std::string& host, int port) {
  return client_.Connect(host, port);
}

StatusOr<std::string> ParkClient::CallOk(Opcode opcode, std::string payload) {
  // Until a well-formed status frame arrives, every failure mode here is
  // the transport's fault: broken connection, timeout, protocol garbage.
  last_error_transport_ = true;
  StatusOr<Frame> called = client_.Call(opcode, std::move(payload));
  if (!called.ok()) return called.status();
  Frame& response = *called;
  if (response.opcode == static_cast<uint32_t>(Opcode::kStatusResponse)) {
    Status carried;
    PAWS_RETURN_IF_ERROR(DecodeStatusPayload(response.payload, &carried));
    if (carried.ok()) {
      return StatusOr<std::string>(
          Status::Internal("server sent a status frame carrying OK"));
    }
    // A decoded status frame is the server *answering* — the one
    // non-transport failure shape (FleetRouter must not fail over on it).
    last_error_transport_ = false;
    return StatusOr<std::string>(carried);
  }
  if (response.opcode != static_cast<uint32_t>(Opcode::kOkResponse)) {
    return StatusOr<std::string>(Status::Internal(
        "unexpected response opcode " + OpcodeName(response.opcode)));
  }
  last_error_transport_ = false;
  return std::move(response.payload);
}

StatusOr<RiskMaps> ParkClient::RiskMap(const std::string& park_id,
                                       double assumed_effort) {
  RiskMapRequest request;
  request.park_id = park_id;
  request.assumed_effort = assumed_effort;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kRiskMap, EncodeRiskMapRequest(request)));
  return TagDecode(DecodeRiskMapsPayload(payload));
}

StatusOr<std::vector<StatusOr<RiskMaps>>> ParkClient::RiskMapBatch(
    const std::vector<RiskMapRequest>& requests) {
  RiskMapBatchRequest request;
  request.requests = requests;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kRiskMapBatch, EncodeRiskMapBatchRequest(request)));
  return TagDecode(DecodeRiskMapBatchPayload(payload));
}

StatusOr<RiskTile> ParkClient::RiskTile(const std::string& park_id,
                                        int tile_id, double assumed_effort) {
  RiskTileRequest request;
  request.park_id = park_id;
  request.tile_id = tile_id;
  request.assumed_effort = assumed_effort;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kRiskTile, EncodeRiskTileRequest(request)));
  return TagDecode(DecodeRiskTilePayload(payload));
}

StatusOr<EffortCurveTable> ParkClient::CellCurves(
    const std::string& park_id, const std::vector<int>& cell_ids,
    std::vector<double> effort_grid) {
  CellCurvesRequest request;
  request.park_id = park_id;
  request.cell_ids = cell_ids;
  request.effort_grid = std::move(effort_grid);
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kCellCurves, EncodeCellCurvesRequest(request)));
  return TagDecode(DecodeEffortCurveTablePayload(payload));
}

StatusOr<PatrolPlan> ParkClient::PlanForPost(const std::string& park_id,
                                             int post_index,
                                             const PlannerConfig& config,
                                             const RobustParams& robust) {
  PlanForPostRequest request;
  request.park_id = park_id;
  request.post_index = post_index;
  request.config = config;
  request.robust = robust;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kPlanForPost, EncodePlanForPostRequest(request)));
  return TagDecode(DecodePatrolPlanPayload(payload));
}

Status ParkClient::SwapSnapshot(const std::string& park_id,
                                const std::string& snapshot_bytes) {
  SwapSnapshotRequest request;
  request.park_id = park_id;
  request.snapshot_bytes = snapshot_bytes;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kSwapSnapshot, EncodeSwapSnapshotRequest(request)));
  (void)payload;
  return Status::OK();
}

StatusOr<ServerStatsReport> ParkClient::Stats(const std::string& park_id) {
  StatsRequest request;
  request.park_id = park_id;
  PAWS_ASSIGN_OR_RETURN(std::string payload,
                        CallOk(Opcode::kStats, EncodeStatsRequest(request)));
  return TagDecode(DecodeStatsReportPayload(payload));
}

StatusOr<MapVersionResponse> ParkClient::MapVersion(uint64_t known_version) {
  MapVersionRequest request;
  request.known_version = known_version;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kMapVersion, EncodeMapVersionRequest(request)));
  return TagDecode(DecodeMapVersionResponse(payload));
}

Status ParkClient::SwapFleetMap(const std::string& map_bytes) {
  SwapFleetMapRequest request;
  request.map_bytes = map_bytes;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kSwapFleetMap, EncodeSwapFleetMapRequest(request)));
  (void)payload;
  return Status::OK();
}

StatusOr<std::string> ParkClient::GetSnapshot(const std::string& park_id) {
  GetSnapshotRequest request;
  request.park_id = park_id;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kGetSnapshot, EncodeGetSnapshotRequest(request)));
  StatusOr<GetSnapshotResponse> decoded = DecodeGetSnapshotResponse(payload);
  if (!decoded.ok()) {
    last_error_transport_ = true;
    return decoded.status();
  }
  return std::move(decoded->snapshot_bytes);
}

StatusOr<RepairResponse> ParkClient::Repair(
    const std::string& park_id, const std::vector<std::string>& sources) {
  RepairRequest request;
  request.park_id = park_id;
  request.sources = sources;
  PAWS_ASSIGN_OR_RETURN(
      std::string payload,
      CallOk(Opcode::kRepair, EncodeRepairRequest(request)));
  return TagDecode(DecodeRepairResponse(payload));
}

}  // namespace paws
