#ifndef PAWS_NET_FAULT_INJECTOR_H_
#define PAWS_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"
#include "util/status.h"

namespace paws {

/// Deterministic fault injection for the serving network stack.
///
/// A FaultSchedule is an explicit, serializable artifact: a seed plus an
/// ordered list of rules, each naming a failure kind, where it applies
/// (per-endpoint, per-opcode) and when it triggers (skip window, firing
/// limit, seeded probability). A FaultInjectedTransport consults the
/// shared FaultInjector on every connect/send/recv and perturbs exactly
/// what the rule says — nothing else is random, so any chaos-suite
/// failure reproduces from its `{seed, schedule}` pair alone. The
/// injector's event log (and its fingerprint) is the audit trail tests
/// compare across runs to prove that determinism.

/// What a fired rule does to the operation it matched.
enum class FaultKind : uint32_t {
  /// Connect fails immediately (connection refused).
  kConnectRefuse = 1,
  /// Connect succeeds after an extra `param` ms.
  kConnectDelay = 2,
  /// Send completes after an extra `param` ms.
  kSendDelay = 3,
  /// Recv delivers after an extra `param` ms.
  kRecvDelay = 4,
  /// Send delivers only the first `param` bytes of the frame, then the
  /// connection breaks (mid-frame truncation).
  kTruncateSend = 5,
  /// Send delivers the frame with the byte at offset `param` (mod frame
  /// size) flipped.
  kCorruptSend = 6,
  /// Recv delivers the bytes with the byte at offset `param` (mod read
  /// size) flipped.
  kCorruptRecv = 7,
  /// Send never happens: the connection resets instead.
  kReset = 8,
  /// Recv delivers nothing for the whole wait (one-way stall: the
  /// request reached the server, the response never arrives).
  kStallRecv = 9,
  /// Send delivers the frame in chunks of at most `param` bytes (not a
  /// failure — forces the peer's partial-read reassembly paths).
  kChunkSend = 10,
};

std::string FaultKindName(FaultKind kind);

/// One line of a schedule. Matching is positional and first-match-wins:
/// the earliest rule whose kind applies to the operation, whose endpoint
/// and opcode filters pass, whose skip window has elapsed, whose firing
/// limit is not spent, and whose probability coin comes up — fires.
struct FaultRule {
  static constexpr uint64_t kNoLimit = ~0ull;

  /// "host:port" this rule applies to; empty = every endpoint.
  std::string endpoint;
  /// Wire opcode filter (requests the client sends); 0 = any. Recv
  /// operations match against the opcode of the last frame sent on the
  /// connection (the request being awaited).
  uint32_t opcode = 0;
  FaultKind kind = FaultKind::kReset;
  /// Kind-specific: ms for delays, byte count/offset for truncation,
  /// corruption and chunking.
  uint64_t param = 0;
  /// Let this many matching operations through untouched first.
  uint64_t skip = 0;
  /// Then fire at most this many times.
  uint64_t limit = kNoLimit;
  /// Seeded coin per candidate after the skip window; 1.0 = always.
  double probability = 1.0;
};

/// The serializable chaos artifact: `{seed, rules}` fully determines
/// every injection decision for a given operation sequence.
struct FaultSchedule {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;

  std::string ToBytes() const;
  static StatusOr<FaultSchedule> FromBytes(const std::string& bytes);
};

/// Thread-safe decision engine shared by every FaultInjectedTransport of
/// a client/router/fleet under test. All rule counters and the
/// probability stream are serialized under one mutex, so the decision
/// sequence is a pure function of (schedule, operation order).
class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule);

  struct Decision {
    bool fired = false;
    FaultKind kind = FaultKind::kReset;
    uint64_t param = 0;
    int rule_index = -1;
  };

  Decision OnConnect(const std::string& endpoint);
  Decision OnSend(const std::string& endpoint, uint32_t opcode);
  Decision OnRecv(const std::string& endpoint, uint32_t opcode);

  const FaultSchedule& schedule() const { return schedule_; }

  /// Every fired decision, in firing order — the determinism audit trail.
  std::vector<std::string> EventLog() const;
  /// Stable 64-bit hash of the event log, as hex. Two runs of the same
  /// {seed, schedule} over the same operation sequence produce the same
  /// fingerprint; tests assert exactly that.
  std::string Fingerprint() const;
  uint64_t total_fired() const;

 private:
  Decision Decide(const char* op, const std::string& endpoint,
                  uint32_t opcode);
  double NextUniform();

  FaultSchedule schedule_;
  mutable std::mutex mu_;
  uint64_t rng_state_ = 0;
  std::vector<uint64_t> match_counts_;
  std::vector<uint64_t> fired_counts_;
  std::vector<std::string> events_;
  uint64_t total_fired_ = 0;
};

/// Wraps a real transport; consults `injector` on every operation and
/// applies whatever fires. `endpoint` is the "host:port" label rules
/// match against.
std::unique_ptr<Transport> MakeFaultInjectedTransport(
    std::unique_ptr<Transport> base, std::shared_ptr<FaultInjector> injector,
    std::string endpoint);

}  // namespace paws

#endif  // PAWS_NET_FAULT_INJECTOR_H_
