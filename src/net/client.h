#ifndef PAWS_NET_CLIENT_H_
#define PAWS_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/status.h"

namespace paws {

struct ClientOptions {
  /// Per-connect-attempt timeout.
  int connect_timeout_ms = 5000;
  /// End-to-end deadline for one Call (send + wait for the response);
  /// 0 = wait forever. A timed-out call closes the connection — the
  /// response may still be in flight and must not be matched to a later
  /// request.
  int request_timeout_ms = 30000;
  /// Connect attempts before giving up (first try + retries).
  int max_connect_attempts = 3;
  /// Backoff before the second attempt; doubles per retry.
  int backoff_initial_ms = 50;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Blocking single-connection wire client: connect, send a request frame,
/// wait for the matching response. Reconnects with exponential backoff
/// when the connection is gone (server restart, idle-timeout close), so a
/// long-lived field client survives serving-side churn.
class WireClient {
 public:
  explicit WireClient(ClientOptions options = {});
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Resolves and connects (with backoff); remembers the endpoint for
  /// later reconnects.
  Status Connect(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// One blocking request/response exchange. Reconnects first if the
  /// connection is down. Transport failures and timeouts surface as
  /// Status (ResourceExhausted for a deadline, Internal for a broken
  /// connection); a served response comes back whole.
  StatusOr<Frame> Call(Opcode opcode, std::string payload);

 private:
  Status EnsureConnected();
  Status ConnectOnce();
  /// Sends all of `bytes` before `deadline_ms` elapses.
  Status SendAll(const std::string& bytes, int deadline_ms);

  ClientOptions options_;
  std::string host_;
  int port_ = -1;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameParser parser_;
};

/// Typed ParkService client: the serving API of ParkService, spoken over
/// a socket. Every method is bit-transparent — the decoded artifact
/// equals the server's in-process result exactly (doubles travel as
/// IEEE-754 bit patterns), enforced by tests/park_server_test.cc.
class ParkClient {
 public:
  explicit ParkClient(ClientOptions options = {});

  Status Connect(const std::string& host, int port);
  bool connected() const { return client_.connected(); }
  void Close() { client_.Close(); }

  StatusOr<RiskMaps> RiskMap(const std::string& park_id,
                             double assumed_effort);
  StatusOr<std::vector<StatusOr<RiskMaps>>> RiskMapBatch(
      const std::vector<RiskMapRequest>& requests);
  StatusOr<EffortCurveTable> CellCurves(const std::string& park_id,
                                        const std::vector<int>& cell_ids,
                                        std::vector<double> effort_grid);
  StatusOr<PatrolPlan> PlanForPost(const std::string& park_id,
                                   int post_index,
                                   const PlannerConfig& config,
                                   const RobustParams& robust);
  /// Ships a whole snapshot archive (ModelSnapshot wire bytes) to replace
  /// — or, for an unknown park id, register — the served model.
  Status SwapSnapshot(const std::string& park_id,
                      const std::string& snapshot_bytes);
  /// Server transport counters + per-park cache stats (empty park_id =
  /// every registered park).
  StatusOr<ServerStatsReport> Stats(const std::string& park_id = "");

 private:
  /// Sends the request and unwraps the protocol envelope: a
  /// kStatusResponse becomes its carried Status, a kOkResponse yields the
  /// result payload.
  StatusOr<std::string> CallOk(Opcode opcode, std::string payload);

  WireClient client_;
};

}  // namespace paws

#endif  // PAWS_NET_CLIENT_H_
