#ifndef PAWS_NET_CLIENT_H_
#define PAWS_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"
#include "util/status.h"

namespace paws {

class FaultInjector;

struct ClientOptions {
  /// Per-connect-attempt timeout.
  int connect_timeout_ms = 5000;
  /// End-to-end deadline for one Call (send + wait for the response);
  /// 0 = wait forever. A timed-out call closes the connection — the
  /// response may still be in flight and must not be matched to a later
  /// request.
  int request_timeout_ms = 30000;
  /// Connect attempts before giving up (first try + retries).
  int max_connect_attempts = 3;
  /// Backoff before the second attempt; doubles per retry.
  int backoff_initial_ms = 50;
  /// Each backoff sleep is scaled by a uniform factor in
  /// [1 - jitter, 1 + jitter]. Without jitter every client of a restarted
  /// shard computes the identical retry schedule and reconnects in
  /// lockstep — a synchronized reconnect storm; ±20% spreads one FleetRouter
  /// fleet's retries across a 40% window (see JitteredBackoffMs).
  double backoff_jitter_pct = 0.2;
  /// Jitter stream seed; 0 (default) derives a per-client seed from the
  /// clock and the client's address, so concurrently constructed clients
  /// jitter independently. Tests pin it for reproducible schedules.
  uint64_t backoff_jitter_seed = 0;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Chaos seam: when set, every connection's transport is wrapped in a
  /// FaultInjectedTransport consulting this injector. One injector is
  /// shared across all the clients of a router or fleet under test, so a
  /// single `{seed, schedule}` artifact drives — and reproduces — the
  /// whole run (see net/fault_injector.h).
  std::shared_ptr<FaultInjector> fault_injector;
};

/// The jittered backoff sleep: `base_ms` scaled by
/// (1 - jitter_pct) + 2 * jitter_pct * unit_uniform, clamped to >= 0, where
/// `unit_uniform` is in [0, 1). Pure so the ±jitter bound is directly
/// unit-testable (tests/fleet_router_test.cc).
int JitteredBackoffMs(int base_ms, double jitter_pct, double unit_uniform);

/// Blocking single-connection wire client: connect, send a request frame,
/// wait for the matching response. Reconnects with exponential backoff
/// when the connection is gone (server restart, idle-timeout close), so a
/// long-lived field client survives serving-side churn.
///
/// All socket work goes through the Transport seam (net/transport.h): a
/// real TCP transport in production, optionally wrapped by the fault
/// injector when options.fault_injector is set.
class WireClient {
 public:
  explicit WireClient(ClientOptions options = {});
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Resolves and connects (with backoff); remembers the endpoint for
  /// later reconnects.
  Status Connect(const std::string& host, int port);

  bool connected() const { return transport_ != nullptr && transport_->connected(); }
  void Close();

  /// One blocking request/response exchange. Reconnects first if the
  /// connection is down. Transport failures and timeouts surface as
  /// Status (ResourceExhausted for a deadline, Internal for a broken
  /// connection); a served response comes back whole.
  StatusOr<Frame> Call(Opcode opcode, std::string payload);

  /// Per-call deadline override: until cleared, every Call (including its
  /// reconnect) must finish by `deadline` — whichever of it and
  /// options.request_timeout_ms is sooner wins. FleetRouter propagates
  /// one request's end-to-end deadline across failover attempts with
  /// this; an expired deadline fails with ResourceExhausted before
  /// touching the network.
  void set_call_deadline(std::chrono::steady_clock::time_point deadline) {
    call_deadline_ = deadline;
    has_call_deadline_ = true;
  }
  void clear_call_deadline() { has_call_deadline_ = false; }

 private:
  Status EnsureConnected();
  Status ConnectOnce();
  /// Remaining ms until the per-call deadline, clamped into [0, cap];
  /// `cap` when no deadline is set.
  int DeadlineBudgetMs(int cap) const;
  /// Uniform in [0, 1) from the jitter stream (splitmix64).
  double NextJitterUniform();

  ClientOptions options_;
  std::string host_;
  int port_ = -1;
  std::unique_ptr<Transport> transport_;
  uint64_t next_request_id_ = 1;
  uint64_t jitter_state_ = 0;
  FrameParser parser_;
  std::chrono::steady_clock::time_point call_deadline_{};
  bool has_call_deadline_ = false;
};

/// Typed ParkService client: the serving API of ParkService, spoken over
/// a socket. Every method is bit-transparent — the decoded artifact
/// equals the server's in-process result exactly (doubles travel as
/// IEEE-754 bit patterns), enforced by tests/park_server_test.cc.
///
/// Error provenance: after a failed call, `last_error_was_transport()`
/// reports whether the failure was the *transport* (broken connection,
/// timeout, malformed response) or an *application status frame* the
/// server deliberately sent (NotFound, InvalidArgument, ...). Replica
/// failover keys on this — a transport error means the endpoint is
/// suspect and the request is safely retryable elsewhere; an application
/// status is an answer, and retrying it against another replica would
/// only duplicate the same error (FleetRouter's contract).
class ParkClient {
 public:
  explicit ParkClient(ClientOptions options = {});

  Status Connect(const std::string& host, int port);
  bool connected() const { return client_.connected(); }
  void Close() { client_.Close(); }

  StatusOr<RiskMaps> RiskMap(const std::string& park_id,
                             double assumed_effort);
  StatusOr<std::vector<StatusOr<RiskMaps>>> RiskMapBatch(
      const std::vector<RiskMapRequest>& requests);
  /// One 64x64-cell tile of the park's risk map (tile ids row-major over
  /// the tile grid) — the sub-park request a pan/zoom frontend issues.
  StatusOr<paws::RiskTile> RiskTile(const std::string& park_id, int tile_id,
                                    double assumed_effort);
  StatusOr<EffortCurveTable> CellCurves(const std::string& park_id,
                                        const std::vector<int>& cell_ids,
                                        std::vector<double> effort_grid);
  StatusOr<PatrolPlan> PlanForPost(const std::string& park_id,
                                   int post_index,
                                   const PlannerConfig& config,
                                   const RobustParams& robust);
  /// Ships a whole snapshot archive (ModelSnapshot wire bytes) to replace
  /// — or, for an unknown park id, register — the served model.
  Status SwapSnapshot(const std::string& park_id,
                      const std::string& snapshot_bytes);
  /// Server transport counters + per-park cache stats (empty park_id =
  /// every registered park).
  StatusOr<ServerStatsReport> Stats(const std::string& park_id = "");

  /// Map-version handshake: reports `known_version`, gets the server's
  /// stored FleetMap version back — plus the map bytes when the server's
  /// is strictly newer (FleetRouter's hot-reload trigger).
  StatusOr<MapVersionResponse> MapVersion(uint64_t known_version);
  /// Publishes a FleetMap artifact to the daemon (admin/rollout path);
  /// the server rejects version regressions with FailedPrecondition.
  Status SwapFleetMap(const std::string& map_bytes);
  /// Pulls the exact snapshot archive the daemon serves for `park_id`.
  StatusOr<std::string> GetSnapshot(const std::string& park_id);
  /// Read-repair nudge: the daemon re-verifies its artifact for
  /// `park_id`, re-pulling from `sources` ("host:port") if needed.
  StatusOr<RepairResponse> Repair(const std::string& park_id,
                                  const std::vector<std::string>& sources);

  /// See WireClient::set_call_deadline.
  void set_call_deadline(std::chrono::steady_clock::time_point deadline) {
    client_.set_call_deadline(deadline);
  }
  void clear_call_deadline() { client_.clear_call_deadline(); }

  /// True iff the most recent failed method call failed at the transport
  /// layer (see class comment). Meaningful only immediately after a
  /// non-OK return; reset by every call.
  bool last_error_was_transport() const { return last_error_transport_; }

 private:
  /// Sends the request and unwraps the protocol envelope: a
  /// kStatusResponse becomes its carried Status, a kOkResponse yields the
  /// result payload. Sets last_error_transport_.
  StatusOr<std::string> CallOk(Opcode opcode, std::string payload);
  /// Marks a post-envelope result-decode failure as transport-grade: a
  /// kOkResponse whose archive payload does not decode means the endpoint
  /// is serving corrupt bytes, not answering the request.
  template <typename T>
  StatusOr<T> TagDecode(StatusOr<T> decoded) {
    if (!decoded.ok()) last_error_transport_ = true;
    return decoded;
  }

  WireClient client_;
  bool last_error_transport_ = false;
};

}  // namespace paws

#endif  // PAWS_NET_CLIENT_H_
