#ifndef PAWS_NET_WIRE_H_
#define PAWS_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <system_error>
#include <vector>

#include "core/risk_map.h"
#include "ml/effort_curve.h"
#include "plan/planner.h"
#include "plan/robust.h"
#include "util/archive.h"
#include "util/status.h"

namespace paws {

/// The PAWS serving wire protocol: length-prefixed binary frames whose
/// payloads are ordinary PAWS archives, so every request and response body
/// inherits the archive layer's guarantees (bit-exact doubles, CRC-32,
/// bounds-checked reads, clean Status on corruption — never UB).
///
/// Frame layout (all integers little-endian):
///
///   bytes  0..3   magic "PNET"
///   bytes  4..7   protocol version (u32, currently 1)
///   bytes  8..15  request id (u64; responses echo the request's id)
///   bytes 16..19  opcode (u32, see Opcode)
///   bytes 20..27  payload length (u64, validated against a hard cap
///                 BEFORE any allocation — an attacker-controlled length
///                 prefix can never drive a giant reserve)
///   bytes 28..    payload: one complete archive (ArchiveWriter::Bytes),
///                 or empty for requests that carry no body
///
/// Responses either echo success (`kOkResponse` + an archive-encoded
/// result whose shape is determined by the request opcode) or carry a
/// status frame (`kStatusResponse` + wire error code + message). Wire
/// error codes map onto the existing StatusCode taxonomy through
/// `paws_error_category()` — the server never invents a parallel error
/// scheme, and a client can round-trip any library Status.

constexpr uint32_t kWireMagic = FourCc("PNET");
constexpr uint32_t kWireProtocolVersion = 1;
constexpr size_t kWireHeaderBytes = 28;
/// Default per-frame allocation bound (64 MiB). Both sides refuse frames
/// whose length prefix exceeds their configured cap.
constexpr size_t kDefaultMaxFrameBytes = 64ull << 20;

/// Request opcodes mirror the ParkService serving API one to one; the two
/// response opcodes close the protocol (clients dispatch on the request
/// they issued, not on the response opcode).
enum class Opcode : uint32_t {
  kRiskMap = 1,
  kRiskMapBatch = 2,
  kCellCurves = 3,
  kPlanForPost = 4,
  kSwapSnapshot = 5,
  kStats = 6,
  /// Fleet elasticity (PR 9): map-version handshake, map publication,
  /// replica-to-replica artifact pull, and the read-repair nudge.
  kMapVersion = 7,
  kSwapFleetMap = 8,
  kGetSnapshot = 9,
  kRepair = 10,
  /// Tiled serving (PR 10): one 64x64-cell risk-map tile — the sub-park
  /// request unit behind pan/zoom map frontends. Routed exactly like
  /// kRiskMap (tiles are sub-park; the park id is the routing key).
  kRiskTile = 11,
  kOkResponse = 100,
  kStatusResponse = 101,
};

/// Human-readable opcode name for logs/errors ("RiskMap", "unknown(42)").
std::string OpcodeName(uint32_t opcode);

/// True for the request opcodes a server dispatches.
bool IsRequestOpcode(uint32_t opcode);

struct Frame {
  uint64_t request_id = 0;
  uint32_t opcode = 0;
  std::string payload;
};

/// Serializes header + payload into wire bytes.
std::string EncodeFrame(const Frame& frame);

/// Incremental frame reassembler for a byte stream: feed whatever the
/// socket delivered, pull complete frames out. Malformed input (bad magic,
/// wrong protocol version, oversized length prefix) surfaces as a Status —
/// the stream is unrecoverable past that point and the connection should
/// be closed. The length prefix is validated against `max_frame_bytes`
/// before any payload buffering, so a hostile prefix cannot force a large
/// allocation.
class FrameParser {
 public:
  explicit FrameParser(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const void* data, size_t n);

  /// Extracts the next complete frame into `*out`. Returns true when a
  /// frame was produced, false when more bytes are needed; a non-OK
  /// status means the stream is broken (close the connection).
  StatusOr<bool> Next(Frame* out);

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  StatusOr<bool> Break(const std::string& why);

  size_t max_frame_bytes_;
  std::string buffer_;
  bool broken_ = false;
};

// ---------------------------------------------------------------------------
// Error taxonomy over the wire (SNIPPETS.md std::error_category idiom).

/// Stable wire value for a StatusCode. The enum's numeric values are an
/// in-process detail; the wire contract is this mapping.
uint32_t WireCodeFromStatus(StatusCode code);

/// Inverse mapping; unknown wire codes (a newer peer) decode as kInternal.
StatusCode StatusCodeFromWire(uint32_t wire_code);

/// std::error_category over the PAWS status taxonomy, so wire errors
/// interoperate with std::error_code plumbing: name() is "paws" and
/// message(code) is the StatusCodeName of the mapped StatusCode.
const std::error_category& paws_error_category();

/// Convenience: the std::error_code for a StatusCode in paws_error_category.
std::error_code MakeWireErrorCode(StatusCode code);

/// Status frame payload: wire code + message, archive-framed. The decode
/// writes the carried status to `*decoded`; its return value reports
/// archive malformation only (out-param because StatusOr<Status> would be
/// ambiguous between its value and error constructors).
std::string EncodeStatusPayload(const Status& status);
Status DecodeStatusPayload(const std::string& payload, Status* decoded);

// ---------------------------------------------------------------------------
// Typed request/response payload codecs, shared by client and server so the
// two sides can never drift. Every Encode* returns one complete archive;
// every Decode* validates it fully (CRC, section framing, trailing-garbage
// rejection) and returns InvalidArgument on any malformation.

struct RiskMapRequest {
  std::string park_id;
  double assumed_effort = 0.0;
};

struct RiskMapBatchRequest {
  std::vector<RiskMapRequest> requests;
};

/// One tile of `park_id`'s risk map at `assumed_effort` km. Tile ids are
/// row-major over the park's tile grid (see TileGeometry); the response
/// body is a RiskTile archive (SaveRiskTile).
struct RiskTileRequest {
  std::string park_id;
  int tile_id = 0;
  double assumed_effort = 0.0;
};

struct CellCurvesRequest {
  std::string park_id;
  std::vector<int> cell_ids;
  std::vector<double> effort_grid;
};

struct PlanForPostRequest {
  std::string park_id;
  int post_index = 0;
  PlannerConfig config;
  RobustParams robust;
};

/// SwapSnapshot ships the whole snapshot archive (the PR-3 deployment
/// artifact) as its body — the unit of model rollout over the network.
struct SwapSnapshotRequest {
  std::string park_id;
  std::string snapshot_bytes;
};

/// Stats request: empty park_id = report every registered park.
struct StatsRequest {
  std::string park_id;
};

/// Map-version handshake: the client reports the newest FleetMap version
/// it routes by; the server answers with its own stored version and — only
/// when strictly newer — piggy-backs the whole map artifact, so a router
/// hot-reloads in one round trip. A server that holds no map answers
/// version 0 with no bytes.
struct MapVersionRequest {
  uint64_t known_version = 0;
};
struct MapVersionResponse {
  uint64_t version = 0;
  bool has_map = false;
  std::string map_bytes;
};

/// Publishes a FleetMap artifact to a daemon (FleetAdmin after a resize).
/// The server validates the bytes and rejects version regressions with
/// kFailedPrecondition — rollouts have a total order.
struct SwapFleetMapRequest {
  std::string map_bytes;
};

/// Replica-to-replica artifact pull: the exact snapshot archive the
/// daemon serves for `park_id` (the inverse of SwapSnapshot). Bulk
/// migration and read repair are built on it.
struct GetSnapshotRequest {
  std::string park_id;
};
struct GetSnapshotResponse {
  std::string snapshot_bytes;
};

/// Read-repair nudge: re-verify the locally served artifact for
/// `park_id`, and when it is missing or fails validation, re-pull it from
/// the listed source daemons ("host:port") in order. The response reports
/// what happened: "verified" (local artifact checked out) or "repaired"
/// (re-pulled and installed).
struct RepairRequest {
  std::string park_id;
  std::vector<std::string> sources;
};
struct RepairResponse {
  std::string action;
};

/// Stats response: transport counters plus per-park cache economics (the
/// risk-map LRU and the effort-curve-table LRU) and the scoring backend
/// each park's model dispatches through.
struct ServerStatsReport {
  uint64_t accepted_connections = 0;
  uint64_t rejected_connections = 0;
  uint64_t active_connections = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t protocol_errors = 0;
  uint64_t deadline_expired = 0;
  struct ParkStats {
    std::string park_id;
    uint64_t risk_hits = 0;
    uint64_t risk_misses = 0;
    uint64_t curve_hits = 0;
    uint64_t curve_misses = 0;
    /// Served-tile LRU counters (ParkService::RiskTileStats).
    uint64_t tile_hits = 0;
    uint64_t tile_misses = 0;
    /// Feature-tile pool economics (TilePoolStats of the park's
    /// TiledFeaturePlane): how many tiles'-worth of feature rows are
    /// resident, how many bytes they pin, and the materialize/evict
    /// traffic — the observable side of the bounded-memory contract.
    uint64_t tile_pool_resident_tiles = 0;
    uint64_t tile_pool_resident_bytes = 0;
    uint64_t tile_pool_hits = 0;
    uint64_t tile_pool_misses = 0;
    uint64_t tile_pool_evictions = 0;
    /// ScoringBackend::name() of the park's model (see
    /// kScoringBackendNames in ml/scoring_backend.h): which compiled
    /// serving layer — and on forests, which SIMD dispatch tier — this
    /// process actually runs for the park.
    std::string scoring_backend;
  };
  std::vector<ParkStats> parks;
};

std::string EncodeRiskMapRequest(const RiskMapRequest& req);
StatusOr<RiskMapRequest> DecodeRiskMapRequest(const std::string& payload);

std::string EncodeRiskMapBatchRequest(const RiskMapBatchRequest& req);
StatusOr<RiskMapBatchRequest> DecodeRiskMapBatchRequest(
    const std::string& payload);

std::string EncodeRiskTileRequest(const RiskTileRequest& req);
StatusOr<RiskTileRequest> DecodeRiskTileRequest(const std::string& payload);

std::string EncodeCellCurvesRequest(const CellCurvesRequest& req);
StatusOr<CellCurvesRequest> DecodeCellCurvesRequest(
    const std::string& payload);

std::string EncodePlanForPostRequest(const PlanForPostRequest& req);
StatusOr<PlanForPostRequest> DecodePlanForPostRequest(
    const std::string& payload);

std::string EncodeSwapSnapshotRequest(const SwapSnapshotRequest& req);
StatusOr<SwapSnapshotRequest> DecodeSwapSnapshotRequest(
    const std::string& payload);

std::string EncodeStatsRequest(const StatsRequest& req);
StatusOr<StatsRequest> DecodeStatsRequest(const std::string& payload);

std::string EncodeMapVersionRequest(const MapVersionRequest& req);
StatusOr<MapVersionRequest> DecodeMapVersionRequest(
    const std::string& payload);

std::string EncodeMapVersionResponse(const MapVersionResponse& resp);
StatusOr<MapVersionResponse> DecodeMapVersionResponse(
    const std::string& payload);

std::string EncodeSwapFleetMapRequest(const SwapFleetMapRequest& req);
StatusOr<SwapFleetMapRequest> DecodeSwapFleetMapRequest(
    const std::string& payload);

std::string EncodeGetSnapshotRequest(const GetSnapshotRequest& req);
StatusOr<GetSnapshotRequest> DecodeGetSnapshotRequest(
    const std::string& payload);

std::string EncodeGetSnapshotResponse(const GetSnapshotResponse& resp);
StatusOr<GetSnapshotResponse> DecodeGetSnapshotResponse(
    const std::string& payload);

std::string EncodeRepairRequest(const RepairRequest& req);
StatusOr<RepairRequest> DecodeRepairRequest(const std::string& payload);

std::string EncodeRepairResponse(const RepairResponse& resp);
StatusOr<RepairResponse> DecodeRepairResponse(const std::string& payload);

std::string EncodeRiskMapsPayload(const RiskMaps& maps);
StatusOr<RiskMaps> DecodeRiskMapsPayload(const std::string& payload);

/// Batch response: one per-item (status, maps) pair, request order.
std::string EncodeRiskMapBatchPayload(
    const std::vector<StatusOr<RiskMaps>>& results);
StatusOr<std::vector<StatusOr<RiskMaps>>> DecodeRiskMapBatchPayload(
    const std::string& payload);

std::string EncodeRiskTilePayload(const RiskTile& tile);
StatusOr<RiskTile> DecodeRiskTilePayload(const std::string& payload);

std::string EncodeEffortCurveTablePayload(const EffortCurveTable& table);
StatusOr<EffortCurveTable> DecodeEffortCurveTablePayload(
    const std::string& payload);

std::string EncodePatrolPlanPayload(const PatrolPlan& plan);
StatusOr<PatrolPlan> DecodePatrolPlanPayload(const std::string& payload);

std::string EncodeStatsReportPayload(const ServerStatsReport& report);
StatusOr<ServerStatsReport> DecodeStatsReportPayload(
    const std::string& payload);

}  // namespace paws

#endif  // PAWS_NET_WIRE_H_
