#include "net/fault_injector.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "net/wire.h"
#include "util/archive.h"

namespace paws {
namespace {

constexpr uint32_t kScheduleTag = FourCc("FSCH");
constexpr uint32_t kScheduleSchemaVersion = 1;
constexpr uint64_t kMaxRules = 4096;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// FNV-1a 64 over the event log; the same pinned-hash rationale as
/// FleetHash64 (the fingerprint is compared across processes in CI).
uint64_t Fnv1a64(uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool KindAppliesTo(const char* op, FaultKind kind) {
  switch (kind) {
    case FaultKind::kConnectRefuse:
    case FaultKind::kConnectDelay:
      return op[0] == 'c';  // "connect"
    case FaultKind::kSendDelay:
    case FaultKind::kTruncateSend:
    case FaultKind::kCorruptSend:
    case FaultKind::kReset:
    case FaultKind::kChunkSend:
      return op[0] == 's';  // "send"
    case FaultKind::kRecvDelay:
    case FaultKind::kCorruptRecv:
    case FaultKind::kStallRecv:
      return op[0] == 'r';  // "recv"
  }
  return false;
}

void SleepMs(uint64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

uint32_t LoadU32At(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kConnectRefuse:
      return "connect-refuse";
    case FaultKind::kConnectDelay:
      return "connect-delay";
    case FaultKind::kSendDelay:
      return "send-delay";
    case FaultKind::kRecvDelay:
      return "recv-delay";
    case FaultKind::kTruncateSend:
      return "truncate-send";
    case FaultKind::kCorruptSend:
      return "corrupt-send";
    case FaultKind::kCorruptRecv:
      return "corrupt-recv";
    case FaultKind::kReset:
      return "reset";
    case FaultKind::kStallRecv:
      return "stall-recv";
    case FaultKind::kChunkSend:
      return "chunk-send";
  }
  return "unknown(" + std::to_string(static_cast<uint32_t>(kind)) + ")";
}

std::string FaultSchedule::ToBytes() const {
  ArchiveWriter writer;
  writer.BeginSection(kScheduleTag);
  writer.WriteU32(kScheduleSchemaVersion);
  writer.WriteU64(seed);
  writer.WriteU64(rules.size());
  for (const FaultRule& rule : rules) {
    writer.WriteString(rule.endpoint);
    writer.WriteU32(rule.opcode);
    writer.WriteU32(static_cast<uint32_t>(rule.kind));
    writer.WriteU64(rule.param);
    writer.WriteU64(rule.skip);
    writer.WriteU64(rule.limit);
    writer.WriteDouble(rule.probability);
  }
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<FaultSchedule> FaultSchedule::FromBytes(const std::string& bytes) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader, ArchiveReader::FromBytes(bytes));
  FaultSchedule schedule;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kScheduleTag));
  uint32_t schema = 0;
  PAWS_RETURN_IF_ERROR(reader.ReadU32(&schema));
  if (schema != kScheduleSchemaVersion) {
    return Status::InvalidArgument("FaultSchedule: unsupported schema " +
                                   std::to_string(schema));
  }
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&schedule.seed));
  uint64_t count = 0;
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&count));
  if (count > kMaxRules) {
    return Status::InvalidArgument("FaultSchedule: rule count out of range");
  }
  schedule.rules.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FaultRule rule;
    uint32_t kind = 0;
    PAWS_RETURN_IF_ERROR(reader.ReadString(&rule.endpoint));
    PAWS_RETURN_IF_ERROR(reader.ReadU32(&rule.opcode));
    PAWS_RETURN_IF_ERROR(reader.ReadU32(&kind));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&rule.param));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&rule.skip));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&rule.limit));
    PAWS_RETURN_IF_ERROR(reader.ReadDouble(&rule.probability));
    if (kind < static_cast<uint32_t>(FaultKind::kConnectRefuse) ||
        kind > static_cast<uint32_t>(FaultKind::kChunkSend)) {
      return Status::InvalidArgument("FaultSchedule: unknown fault kind " +
                                     std::to_string(kind));
    }
    rule.kind = static_cast<FaultKind>(kind);
    schedule.rules.push_back(std::move(rule));
  }
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return schedule;
}

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule)),
      rng_state_(schedule_.seed),
      match_counts_(schedule_.rules.size(), 0),
      fired_counts_(schedule_.rules.size(), 0) {}

double FaultInjector::NextUniform() {
  return static_cast<double>(SplitMix64(&rng_state_) >> 11) *
         (1.0 / 9007199254740992.0);  // 53-bit mantissa / 2^53
}

FaultInjector::Decision FaultInjector::Decide(const char* op,
                                              const std::string& endpoint,
                                              uint32_t opcode) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < schedule_.rules.size(); ++i) {
    const FaultRule& rule = schedule_.rules[i];
    if (!KindAppliesTo(op, rule.kind)) continue;
    if (!rule.endpoint.empty() && rule.endpoint != endpoint) continue;
    if (rule.opcode != 0 && rule.opcode != opcode) continue;
    const uint64_t seq = match_counts_[i]++;
    if (seq < rule.skip) continue;
    if (fired_counts_[i] >= rule.limit) continue;
    if (rule.probability < 1.0 && NextUniform() >= rule.probability) continue;
    ++fired_counts_[i];
    ++total_fired_;
    events_.push_back(std::string(op) + " " + endpoint + " opcode=" +
                      std::to_string(opcode) + " rule=" + std::to_string(i) +
                      " " + FaultKindName(rule.kind) +
                      " param=" + std::to_string(rule.param));
    Decision decision;
    decision.fired = true;
    decision.kind = rule.kind;
    decision.param = rule.param;
    decision.rule_index = static_cast<int>(i);
    return decision;
  }
  return Decision{};
}

FaultInjector::Decision FaultInjector::OnConnect(const std::string& endpoint) {
  return Decide("connect", endpoint, 0);
}

FaultInjector::Decision FaultInjector::OnSend(const std::string& endpoint,
                                              uint32_t opcode) {
  return Decide("send", endpoint, opcode);
}

FaultInjector::Decision FaultInjector::OnRecv(const std::string& endpoint,
                                              uint32_t opcode) {
  return Decide("recv", endpoint, opcode);
}

std::vector<std::string> FaultInjector::EventLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string FaultInjector::Fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t h = 1469598103934665603ull;
  for (const std::string& event : events_) {
    h = Fnv1a64(h, event);
    h = Fnv1a64(h, "\n");
  }
  char hex[17];
  ::snprintf(hex, sizeof(hex), "%016llx",
             static_cast<unsigned long long>(h));
  return std::string(hex);
}

uint64_t FaultInjector::total_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_fired_;
}

namespace {

/// The shim itself: applies whatever the injector decides to the real
/// transport underneath. Recv decisions match on the opcode of the last
/// frame sent on this connection — the request whose response is being
/// awaited.
class FaultInjectedTransport final : public Transport {
 public:
  FaultInjectedTransport(std::unique_ptr<Transport> base,
                         std::shared_ptr<FaultInjector> injector,
                         std::string endpoint)
      : base_(std::move(base)),
        injector_(std::move(injector)),
        endpoint_(std::move(endpoint)) {}

  Status Connect(const std::string& host, int port, int timeout_ms) override {
    const FaultInjector::Decision decision = injector_->OnConnect(endpoint_);
    if (decision.fired) {
      switch (decision.kind) {
        case FaultKind::kConnectRefuse:
          return Status::Internal("injected: connect to " + endpoint_ +
                                  " refused by fault schedule");
        case FaultKind::kConnectDelay:
          SleepMs(decision.param);
          break;
        default:
          break;
      }
    }
    return base_->Connect(host, port, timeout_ms);
  }

  bool connected() const override { return base_->connected(); }
  void Close() override { base_->Close(); }

  Status Send(const char* data, size_t len, int deadline_ms) override {
    // Sniff the outgoing frame's opcode for per-opcode rules (and for
    // the Recv that awaits this request's response).
    if (len >= kWireHeaderBytes && LoadU32At(data) == kWireMagic) {
      last_opcode_ = LoadU32At(data + 16);
    }
    const FaultInjector::Decision decision =
        injector_->OnSend(endpoint_, last_opcode_);
    if (!decision.fired) return base_->Send(data, len, deadline_ms);
    switch (decision.kind) {
      case FaultKind::kSendDelay:
        SleepMs(decision.param);
        return base_->Send(data, len, deadline_ms);
      case FaultKind::kTruncateSend: {
        const size_t keep =
            len == 0 ? 0 : std::min<uint64_t>(decision.param, len - 1);
        if (keep > 0) (void)base_->Send(data, keep, deadline_ms);
        base_->Close();
        return Status::Internal("injected: frame to " + endpoint_ +
                                " truncated mid-send");
      }
      case FaultKind::kCorruptSend: {
        std::string corrupted(data, len);
        if (!corrupted.empty()) {
          corrupted[decision.param % corrupted.size()] ^=
              static_cast<char>(0xff);
        }
        return base_->Send(corrupted.data(), corrupted.size(), deadline_ms);
      }
      case FaultKind::kReset:
        base_->Close();
        return Status::Internal("injected: connection to " + endpoint_ +
                                " reset");
      case FaultKind::kChunkSend: {
        const size_t chunk = decision.param > 0 ? decision.param : 1;
        for (size_t off = 0; off < len; off += chunk) {
          PAWS_RETURN_IF_ERROR(
              base_->Send(data + off, std::min(chunk, len - off), deadline_ms));
        }
        return Status::OK();
      }
      default:
        return base_->Send(data, len, deadline_ms);
    }
  }

  StatusOr<size_t> Recv(char* buf, size_t len, int timeout_ms) override {
    const FaultInjector::Decision decision =
        injector_->OnRecv(endpoint_, last_opcode_);
    if (!decision.fired) return base_->Recv(buf, len, timeout_ms);
    switch (decision.kind) {
      case FaultKind::kRecvDelay:
        SleepMs(decision.param);
        return base_->Recv(buf, len, timeout_ms);
      case FaultKind::kStallRecv:
        // The response never arrives within this wait; the caller's
        // deadline machinery turns the silence into a timeout.
        SleepMs(timeout_ms > 0 ? static_cast<uint64_t>(timeout_ms) : 0);
        return static_cast<size_t>(0);
      case FaultKind::kCorruptRecv: {
        StatusOr<size_t> got = base_->Recv(buf, len, timeout_ms);
        if (got.ok() && *got > 0) {
          buf[decision.param % *got] ^= static_cast<char>(0xff);
        }
        return got;
      }
      default:
        return base_->Recv(buf, len, timeout_ms);
    }
  }

 private:
  std::unique_ptr<Transport> base_;
  std::shared_ptr<FaultInjector> injector_;
  std::string endpoint_;
  uint32_t last_opcode_ = 0;
};

}  // namespace

std::unique_ptr<Transport> MakeFaultInjectedTransport(
    std::unique_ptr<Transport> base, std::shared_ptr<FaultInjector> injector,
    std::string endpoint) {
  return std::make_unique<FaultInjectedTransport>(
      std::move(base), std::move(injector), std::move(endpoint));
}

}  // namespace paws
