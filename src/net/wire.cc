#include "net/wire.h"

#include <cstring>

namespace paws {

namespace {

// Section tags: RQ** = request bodies, RS** = response bodies, STAT =
// status frame. Requests/responses for one opcode deliberately use
// different tags so a misrouted payload fails tag validation instead of
// half-parsing.
constexpr uint32_t kStatusTag = FourCc("STAT");
constexpr uint32_t kRiskMapReqTag = FourCc("RQRM");
constexpr uint32_t kRiskBatchReqTag = FourCc("RQRB");
constexpr uint32_t kCurvesReqTag = FourCc("RQCC");
constexpr uint32_t kPlanReqTag = FourCc("RQPP");
constexpr uint32_t kSwapReqTag = FourCc("RQSS");
constexpr uint32_t kStatsReqTag = FourCc("RQST");
constexpr uint32_t kRiskBatchRespTag = FourCc("RSRB");
constexpr uint32_t kStatsRespTag = FourCc("RSST");
constexpr uint32_t kMapVersionReqTag = FourCc("RQMV");
constexpr uint32_t kMapVersionRespTag = FourCc("RSMV");
constexpr uint32_t kSwapMapReqTag = FourCc("RQFM");
constexpr uint32_t kGetSnapReqTag = FourCc("RQGS");
constexpr uint32_t kGetSnapRespTag = FourCc("RSGS");
constexpr uint32_t kRepairReqTag = FourCc("RQRP");
constexpr uint32_t kRepairRespTag = FourCc("RSRP");
constexpr uint32_t kRiskTileReqTag = FourCc("RQRT");

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

Status BrokenStream(const std::string& what) {
  return Status::InvalidArgument("wire: " + what);
}

}  // namespace

std::string OpcodeName(uint32_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kRiskMap:
      return "RiskMap";
    case Opcode::kRiskMapBatch:
      return "RiskMapBatch";
    case Opcode::kCellCurves:
      return "CellCurves";
    case Opcode::kPlanForPost:
      return "PlanForPost";
    case Opcode::kSwapSnapshot:
      return "SwapSnapshot";
    case Opcode::kStats:
      return "Stats";
    case Opcode::kMapVersion:
      return "MapVersion";
    case Opcode::kSwapFleetMap:
      return "SwapFleetMap";
    case Opcode::kGetSnapshot:
      return "GetSnapshot";
    case Opcode::kRepair:
      return "Repair";
    case Opcode::kRiskTile:
      return "RiskTile";
    case Opcode::kOkResponse:
      return "OkResponse";
    case Opcode::kStatusResponse:
      return "StatusResponse";
  }
  return "unknown(" + std::to_string(opcode) + ")";
}

bool IsRequestOpcode(uint32_t opcode) {
  return opcode >= static_cast<uint32_t>(Opcode::kRiskMap) &&
         opcode <= static_cast<uint32_t>(Opcode::kRiskTile);
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kWireHeaderBytes + frame.payload.size());
  AppendU32(&out, kWireMagic);
  AppendU32(&out, kWireProtocolVersion);
  AppendU64(&out, frame.request_id);
  AppendU32(&out, frame.opcode);
  AppendU64(&out, frame.payload.size());
  out += frame.payload;
  return out;
}

void FrameParser::Append(const void* data, size_t n) {
  // A broken stream never recovers (the framing is lost); buffering more
  // of it would only let a hostile peer grow the buffer after the parser
  // already refused to serve from it.
  if (broken_) return;
  buffer_.append(static_cast<const char*>(data), n);
}

StatusOr<bool> FrameParser::Break(const std::string& why) {
  broken_ = true;
  // Release the bytes already buffered, not just refuse new ones: nothing
  // will ever be parsed from a broken stream, so holding them would let a
  // hostile peer pin up to a header+cap of memory per poisoned connection.
  buffer_.clear();
  buffer_.shrink_to_fit();
  return BrokenStream(why);
}

StatusOr<bool> FrameParser::Next(Frame* out) {
  if (broken_) return BrokenStream("stream already failed");
  // Validate the header prefix as soon as its bytes arrive: garbage is
  // rejected after 4 bytes, not buffered until a bogus length shows up.
  if (buffer_.size() >= 4 && LoadU32(buffer_.data()) != kWireMagic) {
    return Break("bad magic");
  }
  if (buffer_.size() >= 8 && LoadU32(buffer_.data() + 4) !=
                                 kWireProtocolVersion) {
    return Break("unsupported protocol version " +
                 std::to_string(LoadU32(buffer_.data() + 4)));
  }
  if (buffer_.size() < kWireHeaderBytes) return false;
  const uint64_t payload_len = LoadU64(buffer_.data() + 20);
  // The length prefix is attacker-controlled until this check passes; it
  // bounds every subsequent buffer operation.
  if (payload_len > max_frame_bytes_) {
    return Break("frame length " + std::to_string(payload_len) +
                 " exceeds cap " + std::to_string(max_frame_bytes_));
  }
  if (buffer_.size() < kWireHeaderBytes + payload_len) return false;
  out->request_id = LoadU64(buffer_.data() + 8);
  out->opcode = LoadU32(buffer_.data() + 16);
  out->payload = buffer_.substr(kWireHeaderBytes, payload_len);
  buffer_.erase(0, kWireHeaderBytes + payload_len);
  return true;
}

// ---------------------------------------------------------------------------
// Error taxonomy.

uint32_t WireCodeFromStatus(StatusCode code) {
  // Explicit table: the in-process enum order is NOT a wire contract.
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kFailedPrecondition:
      return 2;
    case StatusCode::kNotFound:
      return 3;
    case StatusCode::kOutOfRange:
      return 4;
    case StatusCode::kInternal:
      return 5;
    case StatusCode::kUnimplemented:
      return 6;
    case StatusCode::kResourceExhausted:
      return 7;
    case StatusCode::kInfeasible:
      return 8;
    case StatusCode::kUnbounded:
      return 9;
  }
  return 5;  // unreachable; map to kInternal
}

StatusCode StatusCodeFromWire(uint32_t wire_code) {
  switch (wire_code) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kFailedPrecondition;
    case 3:
      return StatusCode::kNotFound;
    case 4:
      return StatusCode::kOutOfRange;
    case 5:
      return StatusCode::kInternal;
    case 6:
      return StatusCode::kUnimplemented;
    case 7:
      return StatusCode::kResourceExhausted;
    case 8:
      return StatusCode::kInfeasible;
    case 9:
      return StatusCode::kUnbounded;
    default:
      // A newer peer's code we don't know: surface as an internal error
      // rather than inventing semantics for it.
      return StatusCode::kInternal;
  }
}

namespace {

class PawsErrorCategory : public std::error_category {
 public:
  const char* name() const noexcept override { return "paws"; }
  std::string message(int condition) const override {
    return StatusCodeName(
        StatusCodeFromWire(static_cast<uint32_t>(condition)));
  }
};

}  // namespace

const std::error_category& paws_error_category() {
  static PawsErrorCategory category;
  return category;
}

std::error_code MakeWireErrorCode(StatusCode code) {
  return std::error_code(static_cast<int>(WireCodeFromStatus(code)),
                         paws_error_category());
}

std::string EncodeStatusPayload(const Status& status) {
  ArchiveWriter writer;
  writer.BeginSection(kStatusTag);
  writer.WriteU32(WireCodeFromStatus(status.code()));
  writer.WriteString(status.message());
  writer.EndSection();
  return writer.Bytes();
}

Status DecodeStatusPayload(const std::string& payload, Status* decoded) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kStatusTag));
  uint32_t wire_code = 0;
  std::string message;
  PAWS_RETURN_IF_ERROR(reader.ReadU32(&wire_code));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&message));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  *decoded = Status(StatusCodeFromWire(wire_code), std::move(message));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Typed payload codecs.

std::string EncodeRiskMapRequest(const RiskMapRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kRiskMapReqTag);
  writer.WriteString(req.park_id);
  writer.WriteDouble(req.assumed_effort);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<RiskMapRequest> DecodeRiskMapRequest(const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  RiskMapRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kRiskMapReqTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&req.park_id));
  PAWS_RETURN_IF_ERROR(reader.ReadDouble(&req.assumed_effort));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeRiskMapBatchRequest(const RiskMapBatchRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kRiskBatchReqTag);
  writer.WriteU64(req.requests.size());
  for (const RiskMapRequest& item : req.requests) {
    writer.WriteString(item.park_id);
    writer.WriteDouble(item.assumed_effort);
  }
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<RiskMapBatchRequest> DecodeRiskMapBatchRequest(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  RiskMapBatchRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kRiskBatchReqTag));
  uint64_t count = 0;
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&count));
  // Each item needs at least a string count + a double; this bounds the
  // reserve against the section's actual byte budget.
  if (count > reader.remaining() / (8 + 8)) {
    return BrokenStream("batch count overruns payload");
  }
  req.requests.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    RiskMapRequest item;
    PAWS_RETURN_IF_ERROR(reader.ReadString(&item.park_id));
    PAWS_RETURN_IF_ERROR(reader.ReadDouble(&item.assumed_effort));
    req.requests.push_back(std::move(item));
  }
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeRiskTileRequest(const RiskTileRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kRiskTileReqTag);
  writer.WriteString(req.park_id);
  writer.WriteI32(req.tile_id);
  writer.WriteDouble(req.assumed_effort);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<RiskTileRequest> DecodeRiskTileRequest(const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  RiskTileRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kRiskTileReqTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&req.park_id));
  PAWS_RETURN_IF_ERROR(reader.ReadI32(&req.tile_id));
  PAWS_RETURN_IF_ERROR(reader.ReadDouble(&req.assumed_effort));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeCellCurvesRequest(const CellCurvesRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kCurvesReqTag);
  writer.WriteString(req.park_id);
  writer.WriteIntVector(req.cell_ids);
  writer.WriteDoubleVector(req.effort_grid);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<CellCurvesRequest> DecodeCellCurvesRequest(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  CellCurvesRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kCurvesReqTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&req.park_id));
  PAWS_RETURN_IF_ERROR(reader.ReadIntVector(&req.cell_ids));
  PAWS_RETURN_IF_ERROR(reader.ReadDoubleVector(&req.effort_grid));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodePlanForPostRequest(const PlanForPostRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kPlanReqTag);
  writer.WriteString(req.park_id);
  writer.WriteI32(req.post_index);
  writer.WriteI32(req.config.horizon);
  writer.WriteI32(req.config.num_patrols);
  writer.WriteI32(req.config.pwl_segments);
  writer.WriteDouble(req.config.max_cell_effort);
  writer.WriteI32(req.config.milp.max_nodes);
  writer.WriteDouble(req.config.milp.absolute_gap_tolerance);
  writer.WriteDouble(req.config.milp.integrality_tolerance);
  writer.WriteBool(req.config.milp.use_rounding_heuristic);
  writer.WriteI64(req.config.milp.simplex.max_iterations);
  writer.WriteDouble(req.config.milp.simplex.feasibility_tolerance);
  writer.WriteDouble(req.config.milp.simplex.optimality_tolerance);
  writer.WriteDouble(req.robust.beta);
  writer.WriteDouble(req.robust.squash_scale);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<PlanForPostRequest> DecodePlanForPostRequest(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  PlanForPostRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kPlanReqTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&req.park_id));
  PAWS_RETURN_IF_ERROR(reader.ReadI32(&req.post_index));
  PAWS_RETURN_IF_ERROR(reader.ReadI32(&req.config.horizon));
  PAWS_RETURN_IF_ERROR(reader.ReadI32(&req.config.num_patrols));
  PAWS_RETURN_IF_ERROR(reader.ReadI32(&req.config.pwl_segments));
  PAWS_RETURN_IF_ERROR(reader.ReadDouble(&req.config.max_cell_effort));
  PAWS_RETURN_IF_ERROR(reader.ReadI32(&req.config.milp.max_nodes));
  PAWS_RETURN_IF_ERROR(
      reader.ReadDouble(&req.config.milp.absolute_gap_tolerance));
  PAWS_RETURN_IF_ERROR(
      reader.ReadDouble(&req.config.milp.integrality_tolerance));
  PAWS_RETURN_IF_ERROR(
      reader.ReadBool(&req.config.milp.use_rounding_heuristic));
  int64_t simplex_iterations = 0;
  PAWS_RETURN_IF_ERROR(reader.ReadI64(&simplex_iterations));
  req.config.milp.simplex.max_iterations =
      static_cast<long>(simplex_iterations);
  PAWS_RETURN_IF_ERROR(
      reader.ReadDouble(&req.config.milp.simplex.feasibility_tolerance));
  PAWS_RETURN_IF_ERROR(
      reader.ReadDouble(&req.config.milp.simplex.optimality_tolerance));
  PAWS_RETURN_IF_ERROR(reader.ReadDouble(&req.robust.beta));
  PAWS_RETURN_IF_ERROR(reader.ReadDouble(&req.robust.squash_scale));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeSwapSnapshotRequest(const SwapSnapshotRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kSwapReqTag);
  writer.WriteString(req.park_id);
  writer.WriteString(req.snapshot_bytes);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<SwapSnapshotRequest> DecodeSwapSnapshotRequest(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  SwapSnapshotRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kSwapReqTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&req.park_id));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&req.snapshot_bytes));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeStatsRequest(const StatsRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kStatsReqTag);
  writer.WriteString(req.park_id);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<StatsRequest> DecodeStatsRequest(const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  StatsRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kStatsReqTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&req.park_id));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeMapVersionRequest(const MapVersionRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kMapVersionReqTag);
  writer.WriteU64(req.known_version);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<MapVersionRequest> DecodeMapVersionRequest(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  MapVersionRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kMapVersionReqTag));
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&req.known_version));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeMapVersionResponse(const MapVersionResponse& resp) {
  ArchiveWriter writer;
  writer.BeginSection(kMapVersionRespTag);
  writer.WriteU64(resp.version);
  writer.WriteBool(resp.has_map);
  writer.WriteString(resp.map_bytes);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<MapVersionResponse> DecodeMapVersionResponse(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  MapVersionResponse resp;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kMapVersionRespTag));
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&resp.version));
  PAWS_RETURN_IF_ERROR(reader.ReadBool(&resp.has_map));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&resp.map_bytes));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return resp;
}

std::string EncodeSwapFleetMapRequest(const SwapFleetMapRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kSwapMapReqTag);
  writer.WriteString(req.map_bytes);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<SwapFleetMapRequest> DecodeSwapFleetMapRequest(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  SwapFleetMapRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kSwapMapReqTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&req.map_bytes));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeGetSnapshotRequest(const GetSnapshotRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kGetSnapReqTag);
  writer.WriteString(req.park_id);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<GetSnapshotRequest> DecodeGetSnapshotRequest(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  GetSnapshotRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kGetSnapReqTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&req.park_id));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeGetSnapshotResponse(const GetSnapshotResponse& resp) {
  ArchiveWriter writer;
  writer.BeginSection(kGetSnapRespTag);
  writer.WriteString(resp.snapshot_bytes);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<GetSnapshotResponse> DecodeGetSnapshotResponse(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  GetSnapshotResponse resp;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kGetSnapRespTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&resp.snapshot_bytes));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return resp;
}

std::string EncodeRepairRequest(const RepairRequest& req) {
  ArchiveWriter writer;
  writer.BeginSection(kRepairReqTag);
  writer.WriteString(req.park_id);
  writer.WriteU64(req.sources.size());
  for (const std::string& source : req.sources) {
    writer.WriteString(source);
  }
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<RepairRequest> DecodeRepairRequest(const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  RepairRequest req;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kRepairReqTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&req.park_id));
  uint64_t count = 0;
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&count));
  // Each source costs at least its length prefix; bound the reserve.
  if (count > reader.remaining() / 8) {
    return BrokenStream("repair source count overruns payload");
  }
  req.sources.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string source;
    PAWS_RETURN_IF_ERROR(reader.ReadString(&source));
    req.sources.push_back(std::move(source));
  }
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return req;
}

std::string EncodeRepairResponse(const RepairResponse& resp) {
  ArchiveWriter writer;
  writer.BeginSection(kRepairRespTag);
  writer.WriteString(resp.action);
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<RepairResponse> DecodeRepairResponse(const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  RepairResponse resp;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kRepairRespTag));
  PAWS_RETURN_IF_ERROR(reader.ReadString(&resp.action));
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return resp;
}

std::string EncodeRiskMapsPayload(const RiskMaps& maps) {
  ArchiveWriter writer;
  SaveRiskMaps(maps, &writer);
  return writer.Bytes();
}

StatusOr<RiskMaps> DecodeRiskMapsPayload(const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  PAWS_ASSIGN_OR_RETURN(RiskMaps maps, LoadRiskMaps(&reader));
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return maps;
}

std::string EncodeRiskMapBatchPayload(
    const std::vector<StatusOr<RiskMaps>>& results) {
  ArchiveWriter writer;
  writer.BeginSection(kRiskBatchRespTag);
  writer.WriteU64(results.size());
  for (const StatusOr<RiskMaps>& result : results) {
    writer.WriteBool(result.ok());
    if (result.ok()) {
      SaveRiskMaps(*result, &writer);
    } else {
      writer.WriteU32(WireCodeFromStatus(result.status().code()));
      writer.WriteString(result.status().message());
    }
  }
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<std::vector<StatusOr<RiskMaps>>> DecodeRiskMapBatchPayload(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kRiskBatchRespTag));
  uint64_t count = 0;
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&count));
  if (count > reader.remaining()) {  // >= 1 byte per item (the ok flag)
    return BrokenStream("batch count overruns payload");
  }
  std::vector<StatusOr<RiskMaps>> results;
  results.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    bool item_ok = false;
    PAWS_RETURN_IF_ERROR(reader.ReadBool(&item_ok));
    if (item_ok) {
      PAWS_ASSIGN_OR_RETURN(RiskMaps maps, LoadRiskMaps(&reader));
      results.push_back(std::move(maps));
    } else {
      uint32_t wire_code = 0;
      std::string message;
      PAWS_RETURN_IF_ERROR(reader.ReadU32(&wire_code));
      PAWS_RETURN_IF_ERROR(reader.ReadString(&message));
      results.push_back(
          Status(StatusCodeFromWire(wire_code), std::move(message)));
    }
  }
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return results;
}

std::string EncodeRiskTilePayload(const RiskTile& tile) {
  ArchiveWriter writer;
  SaveRiskTile(tile, &writer);
  return writer.Bytes();
}

StatusOr<RiskTile> DecodeRiskTilePayload(const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  PAWS_ASSIGN_OR_RETURN(RiskTile tile, LoadRiskTile(&reader));
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return tile;
}

std::string EncodeEffortCurveTablePayload(const EffortCurveTable& table) {
  ArchiveWriter writer;
  SaveEffortCurveTable(table, &writer);
  return writer.Bytes();
}

StatusOr<EffortCurveTable> DecodeEffortCurveTablePayload(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  PAWS_ASSIGN_OR_RETURN(EffortCurveTable table,
                        LoadEffortCurveTable(&reader));
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return table;
}

std::string EncodePatrolPlanPayload(const PatrolPlan& plan) {
  ArchiveWriter writer;
  SavePatrolPlan(plan, &writer);
  return writer.Bytes();
}

StatusOr<PatrolPlan> DecodePatrolPlanPayload(const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  PAWS_ASSIGN_OR_RETURN(PatrolPlan plan, LoadPatrolPlan(&reader));
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return plan;
}

std::string EncodeStatsReportPayload(const ServerStatsReport& report) {
  ArchiveWriter writer;
  writer.BeginSection(kStatsRespTag);
  writer.WriteU64(report.accepted_connections);
  writer.WriteU64(report.rejected_connections);
  writer.WriteU64(report.active_connections);
  writer.WriteU64(report.frames_in);
  writer.WriteU64(report.frames_out);
  writer.WriteU64(report.protocol_errors);
  writer.WriteU64(report.deadline_expired);
  writer.WriteU64(report.parks.size());
  for (const ServerStatsReport::ParkStats& park : report.parks) {
    writer.WriteString(park.park_id);
    writer.WriteU64(park.risk_hits);
    writer.WriteU64(park.risk_misses);
    writer.WriteU64(park.curve_hits);
    writer.WriteU64(park.curve_misses);
    writer.WriteU64(park.tile_hits);
    writer.WriteU64(park.tile_misses);
    writer.WriteU64(park.tile_pool_resident_tiles);
    writer.WriteU64(park.tile_pool_resident_bytes);
    writer.WriteU64(park.tile_pool_hits);
    writer.WriteU64(park.tile_pool_misses);
    writer.WriteU64(park.tile_pool_evictions);
    writer.WriteString(park.scoring_backend);
  }
  writer.EndSection();
  return writer.Bytes();
}

StatusOr<ServerStatsReport> DecodeStatsReportPayload(
    const std::string& payload) {
  PAWS_ASSIGN_OR_RETURN(ArchiveReader reader,
                        ArchiveReader::FromBytes(payload));
  ServerStatsReport report;
  PAWS_RETURN_IF_ERROR(reader.EnterSection(kStatsRespTag));
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&report.accepted_connections));
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&report.rejected_connections));
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&report.active_connections));
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&report.frames_in));
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&report.frames_out));
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&report.protocol_errors));
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&report.deadline_expired));
  uint64_t count = 0;
  PAWS_RETURN_IF_ERROR(reader.ReadU64(&count));
  if (count > reader.remaining() / (8 + 11 * 8)) {
    return BrokenStream("park count overruns payload");
  }
  report.parks.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ServerStatsReport::ParkStats park;
    PAWS_RETURN_IF_ERROR(reader.ReadString(&park.park_id));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.risk_hits));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.risk_misses));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.curve_hits));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.curve_misses));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.tile_hits));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.tile_misses));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.tile_pool_resident_tiles));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.tile_pool_resident_bytes));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.tile_pool_hits));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.tile_pool_misses));
    PAWS_RETURN_IF_ERROR(reader.ReadU64(&park.tile_pool_evictions));
    PAWS_RETURN_IF_ERROR(reader.ReadString(&park.scoring_backend));
    report.parks.push_back(std::move(park));
  }
  PAWS_RETURN_IF_ERROR(reader.LeaveSection());
  PAWS_RETURN_IF_ERROR(reader.ExpectEnd());
  return report;
}

}  // namespace paws
