#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace paws {

namespace {

using Clock = std::chrono::steady_clock;

Status SocketError(const std::string& what) {
  return Status::Internal("FrameServer: " + what + ": " +
                          std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return SocketError("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

Status FrameServer::Start(FrameServerOptions options, Handler handler) {
  if (started_) {
    return Status::FailedPrecondition("FrameServer: already started");
  }
  if (handler == nullptr) {
    return Status::InvalidArgument("FrameServer: handler is required");
  }
  if (options.num_workers < 1 || options.max_connections < 1) {
    return Status::InvalidArgument(
        "FrameServer: num_workers and max_connections must be positive");
  }
  options_ = std::move(options);
  handler_ = std::move(handler);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return SocketError("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("FrameServer: bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = SocketError("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status = SocketError("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  PAWS_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    return SocketError("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) < 0) return SocketError("pipe");
  PAWS_RETURN_IF_ERROR(SetNonBlocking(wake_pipe_[0]));
  PAWS_RETURN_IF_ERROR(SetNonBlocking(wake_pipe_[1]));

  draining_ = false;
  workers_stop_ = false;
  started_ = true;
  event_thread_ = std::thread([this] { EventLoop(); });
  workers_.reserve(options_.num_workers);
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void FrameServer::Shutdown() {
  if (!started_) return;
  draining_ = true;
  WakeEventLoop();
  event_thread_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  for (int fd : {wake_pipe_[0], wake_pipe_[1]}) {
    if (fd >= 0) ::close(fd);
  }
  wake_pipe_[0] = wake_pipe_[1] = -1;
  started_ = false;
}

FrameServer::Stats FrameServer::stats() const {
  Stats stats;
  stats.accepted_connections = accepted_.load(std::memory_order_relaxed);
  stats.rejected_connections = rejected_.load(std::memory_order_relaxed);
  stats.active_connections = active_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.frames_out = frames_out_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  return stats;
}

void FrameServer::WakeEventLoop() {
  const char byte = 1;
  // EAGAIN means the pipe already holds a wakeup; that is enough. EINTR
  // means nothing was written yet — losing that wakeup could leave a
  // finished response sitting unflushed until the next poll timeout, so
  // retry.
  while (::write(wake_pipe_[1], &byte, 1) < 0 && errno == EINTR) {
  }
}

void FrameServer::AcceptNewConnections() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // A signal mid-accept must not abandon connections still waiting
      // in the backlog — only a drained queue (EAGAIN) or a real error
      // ends the sweep.
      if (errno == EINTR) continue;
      break;
    }
    if (conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      // Accept-then-close: leaving the connection in the backlog would
      // make poll report the listener readable forever.
      ::close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    conn.parser = FrameParser(options_.max_frame_bytes);
    conn.last_activity = Clock::now();
    conns_.emplace(next_conn_id_++, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool FrameServer::ReadFromConn(uint64_t conn_id, Conn* conn) {
  char buf[64 * 1024];
  size_t cap = sizeof(buf);
  if (options_.max_read_bytes_for_test > 0 &&
      options_.max_read_bytes_for_test < cap) {
    cap = options_.max_read_bytes_for_test;
  }
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, cap, 0);
    if (n > 0) {
      conn->last_activity = Clock::now();
      conn->parser.Append(buf, static_cast<size_t>(n));
      while (true) {
        Frame frame;
        StatusOr<bool> got = conn->parser.Next(&frame);
        if (!got.ok()) {
          // Unrecoverable stream (bad magic / version / oversized
          // prefix): count it and close; there is no trustworthy frame
          // to answer on.
          protocol_errors_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        if (!*got) break;
        frames_in_.fetch_add(1, std::memory_order_relaxed);
        ++conn->in_flight;
        {
          std::lock_guard<std::mutex> lock(queue_mu_);
          work_queue_.push_back(
              Task{conn_id, std::move(frame), Clock::now()});
        }
        queue_cv_.notify_one();
      }
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool FrameServer::WriteToConn(Conn* conn) {
  while (conn->out_pos < conn->outbuf.size()) {
    size_t chunk = conn->outbuf.size() - conn->out_pos;
    if (options_.max_write_bytes_for_test > 0 &&
        options_.max_write_bytes_for_test < chunk) {
      chunk = options_.max_write_bytes_for_test;
    }
    const ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_pos,
                             chunk, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      conn->last_activity = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  conn->outbuf.clear();
  conn->out_pos = 0;
  return true;
}

void FrameServer::CloseConn(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
  active_.fetch_sub(1, std::memory_order_relaxed);
}

void FrameServer::DrainResponseQueue() {
  std::deque<Response> responses;
  {
    std::lock_guard<std::mutex> lock(response_mu_);
    responses.swap(response_queue_);
  }
  for (Response& response : responses) {
    const auto it = conns_.find(response.conn_id);
    if (it == conns_.end()) continue;  // client went away; drop
    Conn& conn = it->second;
    conn.outbuf.append(response.bytes);
    --conn.in_flight;
    frames_out_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FrameServer::EventLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn_ids;
  while (true) {
    DrainResponseQueue();

    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (draining) {
      bool queue_empty;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_empty = work_queue_.empty();
      }
      bool responses_empty;
      {
        std::lock_guard<std::mutex> lock(response_mu_);
        responses_empty = response_queue_.empty();
      }
      bool flushed = true;
      for (const auto& kv : conns_) {
        if (kv.second.out_pos < kv.second.outbuf.size() ||
            kv.second.in_flight > 0) {
          flushed = false;
          break;
        }
      }
      if (queue_empty && responses_empty && flushed &&
          tasks_executing_.load(std::memory_order_acquire) == 0) {
        break;
      }
    }

    fds.clear();
    fd_conn_ids.clear();
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn_ids.push_back(0);
    }
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fd_conn_ids.push_back(0);
    for (auto& kv : conns_) {
      short events = 0;
      // During drain no new requests are read; only responses flush out.
      if (!draining) events |= POLLIN;
      if (kv.second.out_pos < kv.second.outbuf.size()) events |= POLLOUT;
      fds.push_back({kv.second.fd, events, 0});
      fd_conn_ids.push_back(kv.first);
    }
    // Short timeout so idle sweeps and drain checks run even when the
    // sockets are silent.
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);

    std::vector<uint64_t> to_close;
    for (size_t i = 0; i < fds.size(); ++i) {
      const pollfd& pfd = fds[i];
      if (pfd.revents == 0) continue;
      if (pfd.fd == wake_pipe_[0]) {
        char sink[256];
        while (::read(wake_pipe_[0], sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (listen_fd_ >= 0 && pfd.fd == listen_fd_) {
        AcceptNewConnections();
        continue;
      }
      const uint64_t conn_id = fd_conn_ids[i];
      const auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
        to_close.push_back(conn_id);
        continue;
      }
      if ((pfd.revents & POLLIN) != 0 && !ReadFromConn(conn_id, &conn)) {
        to_close.push_back(conn_id);
        continue;
      }
      if ((pfd.revents & POLLOUT) != 0 && !WriteToConn(&conn)) {
        to_close.push_back(conn_id);
        continue;
      }
      // POLLHUP alone: the peer closed its end. Keep the connection only
      // while responses are still flushing (send may still succeed on a
      // half-closed socket).
      if ((pfd.revents & POLLHUP) != 0 && conn.in_flight == 0 &&
          conn.out_pos >= conn.outbuf.size()) {
        to_close.push_back(conn_id);
      }
    }
    for (uint64_t conn_id : to_close) CloseConn(conn_id);

    if (options_.idle_timeout_ms > 0 && !draining) {
      const Clock::time_point now = Clock::now();
      std::vector<uint64_t> idle;
      for (const auto& kv : conns_) {
        const Conn& conn = kv.second;
        if (conn.in_flight == 0 && conn.out_pos >= conn.outbuf.size() &&
            conn.parser.buffered_bytes() == 0 &&
            MsBetween(conn.last_activity, now) > options_.idle_timeout_ms) {
          idle.push_back(kv.first);
        }
      }
      for (uint64_t conn_id : idle) CloseConn(conn_id);
    }
  }
  // Drained: everything owed has been written; close what remains.
  std::vector<uint64_t> remaining;
  remaining.reserve(conns_.size());
  for (const auto& kv : conns_) remaining.push_back(kv.first);
  for (uint64_t conn_id : remaining) CloseConn(conn_id);
}

void FrameServer::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return workers_stop_ || !work_queue_.empty();
      });
      if (work_queue_.empty()) {
        if (workers_stop_) return;
        continue;
      }
      task = std::move(work_queue_.front());
      work_queue_.pop_front();
      // Inside the lock so a drain check can never observe an empty
      // queue while this task is in limbo.
      tasks_executing_.fetch_add(1, std::memory_order_acq_rel);
    }

    Frame response;
    response.request_id = task.frame.request_id;
    const bool expired =
        options_.request_deadline_ms > 0 &&
        MsBetween(task.enqueued, Clock::now()) > options_.request_deadline_ms;
    if (expired) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      response.opcode = static_cast<uint32_t>(Opcode::kStatusResponse);
      response.payload = EncodeStatusPayload(Status::ResourceExhausted(
          "FrameServer: request deadline expired before dispatch"));
    } else {
      if (options_.pre_dispatch_hook_for_test) {
        options_.pre_dispatch_hook_for_test();
      }
      response = handler_(task.frame);
      response.request_id = task.frame.request_id;
    }

    {
      std::lock_guard<std::mutex> lock(response_mu_);
      response_queue_.push_back(
          Response{task.conn_id, EncodeFrame(response)});
    }
    tasks_executing_.fetch_sub(1, std::memory_order_acq_rel);
    WakeEventLoop();
  }
}

}  // namespace paws
