#ifndef PAWS_NET_SERVER_H_
#define PAWS_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "util/status.h"

namespace paws {

struct FrameServerOptions {
  /// Listen address; the default binds loopback only (a deliberate
  /// default for a field-station daemon — widen explicitly).
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks a free port, reported by port().
  int port = 0;
  /// Dedicated request-dispatch threads. Deliberately NOT the shared
  /// ParallelFor pool: a request holds a park reader lock while its model
  /// scoring waits on the pool, so pool tasks must stay lock-free (the
  /// PR 5 deadlock contract, see ParkService::RiskMapBatch).
  int num_workers = 4;
  /// Connections beyond this are accepted and immediately closed.
  int max_connections = 64;
  /// Per-frame allocation bound; oversized length prefixes break the
  /// connection before any payload buffering.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Close connections with no read activity, no queued work and nothing
  /// left to write after this long. 0 = never.
  int idle_timeout_ms = 60000;
  /// Requests still queued this long after arrival are answered with a
  /// ResourceExhausted status frame instead of being dispatched (shed
  /// load when the workers fall behind). 0 = never expire.
  int request_deadline_ms = 0;
  /// Test seam: runs on the worker thread immediately before the handler
  /// (after the deadline check). Lets tests make dispatch observably slow
  /// without a timing-dependent workload.
  std::function<void()> pre_dispatch_hook_for_test;
  /// Test seams: cap a single recv()/send() to this many bytes (0 = no
  /// cap). Forces the partial-read reassembly and partial-write resume
  /// paths deterministically, instead of hoping the kernel fragments.
  size_t max_read_bytes_for_test = 0;
  size_t max_write_bytes_for_test = 0;
};

/// Portable readiness-loop frame server: one listener/event thread owns
/// every socket (poll(2)-based — the fd counts of a serving daemon are
/// tens of connections, where poll and epoll are indistinguishable and
/// poll needs no OS gating), non-blocking accept, per-connection
/// partial-frame reassembly and buffered partial writes; complete frames
/// are dispatched to dedicated worker threads whose responses are handed
/// back to the event thread through a self-pipe wakeup, so sockets are
/// only ever touched from one thread.
///
/// Error handling at the framing layer: a connection that sends bytes the
/// FrameParser rejects (bad magic, wrong version, oversized length
/// prefix) is counted in stats().protocol_errors and closed — the stream
/// is unrecoverable. Malformed *payloads* inside a well-framed request
/// are the handler's business (ParkServer answers them with
/// InvalidArgument status frames).
///
/// Shutdown() drains gracefully: the listener closes first, already
///-queued requests finish, their responses flush, then connections close
/// and the threads join.
class FrameServer {
 public:
  /// Produces the response frame for one request frame. Runs on a worker
  /// thread; must be thread-safe (ParkService is).
  using Handler = std::function<Frame(const Frame&)>;

  FrameServer() = default;
  ~FrameServer() { Shutdown(); }

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds, listens and starts the event + worker threads. Fails with
  /// FailedPrecondition if already started, Internal on socket errors.
  Status Start(FrameServerOptions options, Handler handler);

  /// The bound port (resolves option port 0), or -1 before Start.
  int port() const { return port_; }

  /// Graceful drain; idempotent, also called by the destructor.
  void Shutdown();

  struct Stats {
    uint64_t accepted_connections = 0;
    uint64_t rejected_connections = 0;
    uint64_t active_connections = 0;
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
    uint64_t protocol_errors = 0;
    uint64_t deadline_expired = 0;
  };
  Stats stats() const;

 private:
  struct Conn {
    int fd = -1;
    FrameParser parser;
    std::string outbuf;
    size_t out_pos = 0;
    std::chrono::steady_clock::time_point last_activity;
    /// Requests dispatched but whose responses are not yet in outbuf;
    /// only the event thread touches it.
    int in_flight = 0;
  };

  struct Task {
    uint64_t conn_id = 0;
    Frame frame;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Response {
    uint64_t conn_id = 0;
    std::string bytes;
  };

  void EventLoop();
  void WorkerLoop();
  void WakeEventLoop();
  void AcceptNewConnections();
  /// Reads whatever the socket has; returns false if the connection must
  /// close (EOF, error, protocol violation).
  bool ReadFromConn(uint64_t conn_id, Conn* conn);
  /// Flushes buffered output; returns false if the connection must close.
  bool WriteToConn(Conn* conn);
  void CloseConn(uint64_t conn_id);
  void DrainResponseQueue();

  FrameServerOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = -1;
  bool started_ = false;

  std::thread event_thread_;
  std::vector<std::thread> workers_;

  // Connections: owned and touched by the event thread only.
  std::unordered_map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> work_queue_;
  bool workers_stop_ = false;

  std::mutex response_mu_;
  std::deque<Response> response_queue_;

  std::atomic<bool> draining_{false};
  /// Tasks dequeued by a worker whose response is not yet queued.
  std::atomic<int> tasks_executing_{0};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> deadline_expired_{0};
};

}  // namespace paws

#endif  // PAWS_NET_SERVER_H_
