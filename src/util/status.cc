#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace paws {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void CheckOrDie(bool condition, const char* msg) {
  if (!condition) {
    std::fprintf(stderr, "PAWS check failed: %s\n", msg);
    std::abort();
  }
}

Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace paws
