#ifndef PAWS_UTIL_THREAD_POOL_H_
#define PAWS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paws {

/// How many threads a parallel region may use. Plumbed through every
/// parallel entry point (bagging training, CV folds, iWare threshold
/// training, batch prediction, risk-map assembly) so callers can pin the
/// degree of parallelism per component.
///
/// All parallel loops in the library are written so their output is
/// bit-identical for every thread count: random streams are forked
/// serially before the parallel region, each index writes only its own
/// output slot, and per-index arithmetic never depends on the chunking.
/// `num_threads = 1` therefore reproduces the exact N-thread results while
/// executing inline on the calling thread (no pool involvement at all).
struct ParallelismConfig {
  /// 1 = serial (run inline on the caller), N > 1 = use up to N threads,
  /// 0 = auto: $PAWS_NUM_THREADS if set, else hardware_concurrency().
  int num_threads = 0;

  /// Resolves `num_threads` to a concrete positive thread count.
  int ResolveNumThreads() const;

  static ParallelismConfig Serial() { return ParallelismConfig{1}; }
};

/// Fixed-size pool of `std::thread` workers executing chunked index
/// ranges. Deliberately work-stealing-free: one job runs at a time, and
/// the workers plus the calling thread pull contiguous `grain`-sized
/// chunks off a shared atomic cursor, so scheduling is simple to reason
/// about (and to sanitize) while load still balances dynamically.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (>= 0). The pool's effective
  /// parallelism is num_workers + 1: the thread that calls ParallelFor
  /// always participates.
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Invokes `fn(chunk_begin, chunk_end)` over disjoint chunks covering
  /// [begin, end), each at most `grain` long, on at most `max_threads`
  /// threads (the caller plus up to max_threads - 1 workers). Blocks until
  /// every chunk has run. The first exception thrown by `fn` is rethrown
  /// on the calling thread after remaining chunks are cancelled.
  ///
  /// Reentrancy: a call from inside a worker (a nested parallel region)
  /// executes the whole range inline on that worker. Calls from distinct
  /// external threads serialize on an internal job lock.
  void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                   int max_threads,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Process-wide pool sized to hardware_concurrency() - 1 workers,
  /// created on first use and intentionally leaked (worker threads must
  /// outlive any static destructor that might still predict).
  static ThreadPool& Shared();

 private:
  struct Job {
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::atomic<std::int64_t> next{0};
    std::int64_t end = 0;
    std::int64_t grain = 1;
    /// Worker participation budget (max_threads - 1); workers that grab a
    /// non-positive slot skip the job.
    std::atomic<int> worker_slots{0};
    std::mutex error_mu;
    std::exception_ptr error;
  };

  void WorkerLoop();
  static void RunChunks(Job* job);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;          // guarded by mu_
  std::uint64_t job_seq_ = 0;   // guarded by mu_; bumped per job
  int workers_unfinished_ = 0;  // guarded by mu_; workers yet to ack the job
  bool shutdown_ = false;       // guarded by mu_

  std::mutex submit_mu_;  // serializes concurrent external submitters
};

/// Chunked parallel loop over [begin, end) honoring `config`: runs inline
/// when the resolved thread count is 1, the range is a single chunk, or
/// the call is nested inside a pool worker; otherwise dispatches to
/// ThreadPool::Shared(). `fn(chunk_begin, chunk_end)` must write only to
/// per-index state — outputs are then bit-identical for every thread
/// count.
void ParallelFor(const ParallelismConfig& config, std::int64_t begin,
                 std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace paws

#endif  // PAWS_UTIL_THREAD_POOL_H_
