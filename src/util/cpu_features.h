#ifndef PAWS_UTIL_CPU_FEATURES_H_
#define PAWS_UTIL_CPU_FEATURES_H_

namespace paws {

/// SIMD dispatch tiers for the runtime-dispatched serving kernels, ordered
/// weakest to strongest so tiers clamp with std::min. Every tier computes
/// bit-identical results; only wall time differs.
enum class SimdTier {
  kScalar = 0,  // portable 4-lane ILP traversal — always available
  kAvx2 = 1,    // 8 rows per lane group, gathered node walks
  kAvx512 = 2,  // 16 rows per lane group, masked gathered walks
};

/// Lowercase tier name: "scalar" / "avx2" / "avx512". These are both the
/// `PAWS_FORCE_BACKEND` override values and the `-<tier>` suffix a
/// compiled-forest backend name reports (scalar keeps the bare name).
const char* SimdTierName(SimdTier tier);

/// Parses a tier name ("scalar"/"avx2"/"avx512"). Returns false — and
/// leaves `*out` untouched — for anything else.
bool ParseSimdTier(const char* name, SimdTier* out);

/// Strongest tier this CPU (and this build) can execute, probed once via
/// CPUID and cached. Non-x86 builds, and toolchains without the needed
/// intrinsics, report kScalar.
SimdTier DetectSimdTier();

/// The tier serving kernels should dispatch to right now: DetectSimdTier()
/// clamped by the `PAWS_FORCE_BACKEND` environment override when it names
/// a valid tier (unknown values are ignored). Forcing a tier the hardware
/// lacks clamps down to the detected tier, so the override can never
/// select an illegal instruction. Reads the environment on every call —
/// cheap at backend-selection frequency, and it lets tests flip the
/// override with setenv.
SimdTier ActiveSimdTier();

/// min(forced, detected) when `force` names a valid tier, else `detected` —
/// the pure resolution rule behind ActiveSimdTier, exposed for tests.
SimdTier ResolveSimdTier(const char* force, SimdTier detected);

}  // namespace paws

#endif  // PAWS_UTIL_CPU_FEATURES_H_
