#ifndef PAWS_UTIL_SPECIAL_H_
#define PAWS_UTIL_SPECIAL_H_

namespace paws {

/// Natural log of the gamma function (Lanczos approximation).
/// Valid for x > 0.
double LogGamma(double x);

/// Regularized lower incomplete gamma function P(a, x) = gamma(a,x)/Gamma(a).
/// Requires a > 0, x >= 0. Series expansion for x < a+1, continued fraction
/// otherwise (Numerical Recipes gammp/gammq construction).
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-squared distribution with k degrees of
/// freedom: Pr[X >= x]. This is the p-value of a chi-squared test statistic.
double ChiSquaredSurvival(double x, int degrees_of_freedom);

/// Standard normal cumulative distribution function.
double NormalCdf(double x);

/// Logistic sigmoid 1 / (1 + exp(-x)), numerically stable for large |x|.
double Sigmoid(double x);

/// Natural log of (1 + exp(x)), numerically stable.
double Log1pExp(double x);

/// Error function wrapper (provided for symmetry with NormalCdf).
double Erf(double x);

}  // namespace paws

#endif  // PAWS_UTIL_SPECIAL_H_
