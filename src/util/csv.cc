#include "util/csv.h"

#include <cstdio>
#include <fstream>

namespace paws {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CheckOrDie(!header_.empty(), "CsvWriter requires a non-empty header");
}

void CsvWriter::AddRow(const std::vector<double>& row) {
  CheckOrDie(row.size() == header_.size(), "CsvWriter row width mismatch");
  std::vector<std::string> text;
  text.reserve(row.size());
  for (double v : row) text.push_back(FormatDouble(v));
  rows_.push_back(std::move(text));
}

void CsvWriter::AddTextRow(const std::vector<std::string>& row) {
  CheckOrDie(row.size() == header_.size(), "CsvWriter row width mismatch");
  rows_.push_back(row);
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i) out += ',';
    out += header_[i];
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += row[i];
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::Internal("cannot open file for writing: " + path);
  f << ToString();
  if (!f) return Status::Internal("failed writing file: " + path);
  return Status::OK();
}

}  // namespace paws
