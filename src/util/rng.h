#ifndef PAWS_UTIL_RNG_H_
#define PAWS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace paws {

/// Deterministic, fast pseudo-random number generator (xoshiro256**),
/// seeded via splitmix64. All stochastic components of the library
/// (synthetic parks, patrol simulation, bootstrap sampling, ...) take an
/// explicit Rng so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit integer.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Standard normal variate (Box-Muller, cached pair).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Poisson variate (Knuth's method; suitable for small means).
  int Poisson(double mean);

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Weights must be non-negative with a positive sum.
  int Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<int> Permutation(int n);

  /// Samples k distinct indices from [0, n) without replacement (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Forks an independent child generator; streams do not overlap in
  /// practice because the child is seeded by fresh output of this one.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace paws

#endif  // PAWS_UTIL_RNG_H_
