#ifndef PAWS_UTIL_MATRIX_H_
#define PAWS_UTIL_MATRIX_H_

#include <vector>

#include "util/archive.h"
#include "util/status.h"

namespace paws {

/// Dense row-major matrix of doubles. Sized for the small/medium linear
/// algebra the library needs (Gaussian-process kernels, Cholesky solves,
/// simplex tableaus); not a general-purpose BLAS replacement.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
    CheckOrDie(rows >= 0 && cols >= 0, "Matrix dimensions must be >= 0");
  }

  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Raw pointer to row r (contiguous, cols() entries).
  double* Row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* Row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  Matrix Transpose() const;

  /// this * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// this * v. Requires cols() == v.size().
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// Bit-exact serialization (shape + row-major payload).
  void Save(ArchiveWriter* ar) const;
  static StatusOr<Matrix> Load(ArchiveReader* ar);

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix:
/// A = L L^T. Fails with Internal status if A is not (numerically) positive
/// definite.
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

/// Solves L y = b for y with L lower triangular (forward substitution).
std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b);

/// Solves L^T x = y for x with L lower triangular (back substitution on the
/// transpose).
std::vector<double> BackSubstituteTranspose(const Matrix& l,
                                            const std::vector<double>& y);

/// Solves A x = b given the Cholesky factor L of A.
std::vector<double> CholeskySolve(const Matrix& l, const std::vector<double>& b);

/// Sum of log of diagonal entries of L; log det(A) = 2 * this for A = L L^T.
double LogDetFromCholesky(const Matrix& l);

/// Dot product. Requires equal sizes.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace paws

#endif  // PAWS_UTIL_MATRIX_H_
