#include "util/rng.h"

#include <cmath>

#include "util/status.h"

namespace paws {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  CheckOrDie(n > 0, "UniformInt requires n > 0");
  return static_cast<int>(NextUint64() % static_cast<uint64_t>(n));
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

int Rng::Poisson(double mean) {
  CheckOrDie(mean >= 0.0, "Poisson mean must be non-negative");
  if (mean <= 0.0) return 0;
  // Knuth's algorithm; for large means fall back to a normal approximation.
  if (mean > 30.0) {
    const double v = Normal(mean, std::sqrt(mean));
    return v < 0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double p = 1.0;
  int k = 0;
  do {
    ++k;
    p *= Uniform();
  } while (p > limit);
  return k - 1;
}

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    CheckOrDie(w >= 0.0, "Categorical weights must be non-negative");
    total += w;
  }
  CheckOrDie(total > 0.0, "Categorical weights must have a positive sum");
  double u = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  for (int i = n - 1; i > 0; --i) {
    const int j = UniformInt(i + 1);
    std::swap(idx[i], idx[j]);
  }
  return idx;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  CheckOrDie(k >= 0 && k <= n, "SampleWithoutReplacement requires 0 <= k <= n");
  std::vector<int> idx = Permutation(n);
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace paws
