#ifndef PAWS_UTIL_STATS_H_
#define PAWS_UTIL_STATS_H_

#include <vector>

#include "util/status.h"

namespace paws {

/// Summary statistics of a sample.
struct Summary {
  int count = 0;
  double mean = 0.0;
  double variance = 0.0;  // unbiased (n-1 denominator); 0 for n < 2
  double min = 0.0;
  double max = 0.0;
};

/// Computes count/mean/variance/min/max of `values` in one pass.
Summary Summarize(const std::vector<double>& values);

/// Pearson correlation coefficient of paired samples. Returns 0 when either
/// sample has zero variance. Requires x.size() == y.size() >= 2.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Result of a Pearson chi-squared test of independence on a contingency
/// table.
struct ChiSquaredResult {
  double statistic = 0.0;
  int degrees_of_freedom = 0;
  double p_value = 1.0;
};

/// Pearson chi-squared test of independence. `table[i][j]` is the observed
/// count in row i, column j. All rows must have the same number of columns,
/// every row/column sum should be positive (rows or columns with zero totals
/// are dropped), and the table must end up at least 2x2.
StatusOr<ChiSquaredResult> ChiSquaredIndependence(
    const std::vector<std::vector<double>>& table);

/// Value at the q-th percentile (q in [0, 100]) of `values` using linear
/// interpolation between order statistics. Requires a non-empty sample.
double Percentile(std::vector<double> values, double q);

/// Weighted mean; weights must be non-negative with a positive sum.
double WeightedMean(const std::vector<double>& values,
                    const std::vector<double>& weights);

}  // namespace paws

#endif  // PAWS_UTIL_STATS_H_
