#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/special.h"

namespace paws {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = static_cast<int>(values.size());
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / s.count;
  if (s.count >= 2) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.variance = ss / (s.count - 1);
  }
  return s;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  CheckOrDie(x.size() == y.size(), "PearsonCorrelation: size mismatch");
  CheckOrDie(x.size() >= 2, "PearsonCorrelation: need at least 2 points");
  const int n = static_cast<int>(x.size());
  double mx = 0.0, my = 0.0;
  for (int i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (int i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

StatusOr<ChiSquaredResult> ChiSquaredIndependence(
    const std::vector<std::vector<double>>& table) {
  if (table.empty() || table[0].empty()) {
    return Status::InvalidArgument("chi-squared: empty table");
  }
  const size_t cols = table[0].size();
  for (const auto& row : table) {
    if (row.size() != cols) {
      return Status::InvalidArgument("chi-squared: ragged table");
    }
    for (double v : row) {
      if (v < 0.0) {
        return Status::InvalidArgument("chi-squared: negative count");
      }
    }
  }

  // Drop all-zero rows and columns: they contribute no information and
  // would produce zero expected counts.
  std::vector<double> row_sums, col_sums;
  std::vector<std::vector<double>> kept;
  std::vector<double> col_total(cols, 0.0);
  for (const auto& row : table) {
    double rs = 0.0;
    for (size_t j = 0; j < cols; ++j) rs += row[j];
    if (rs > 0.0) {
      kept.push_back(row);
      row_sums.push_back(rs);
      for (size_t j = 0; j < cols; ++j) col_total[j] += row[j];
    }
  }
  std::vector<int> kept_cols;
  for (size_t j = 0; j < cols; ++j) {
    if (col_total[j] > 0.0) kept_cols.push_back(static_cast<int>(j));
  }
  if (kept.size() < 2 || kept_cols.size() < 2) {
    return Status::InvalidArgument(
        "chi-squared: table must be at least 2x2 after dropping empty "
        "rows/columns");
  }

  double total = 0.0;
  for (double rs : row_sums) total += rs;

  ChiSquaredResult result;
  for (size_t i = 0; i < kept.size(); ++i) {
    for (int j : kept_cols) {
      const double expected = row_sums[i] * col_total[j] / total;
      const double diff = kept[i][j] - expected;
      result.statistic += diff * diff / expected;
    }
  }
  result.degrees_of_freedom = static_cast<int>(kept.size() - 1) *
                              static_cast<int>(kept_cols.size() - 1);
  result.p_value =
      ChiSquaredSurvival(result.statistic, result.degrees_of_freedom);
  return result;
}

double Percentile(std::vector<double> values, double q) {
  CheckOrDie(!values.empty(), "Percentile of empty sample");
  CheckOrDie(q >= 0.0 && q <= 100.0, "Percentile q must be in [0, 100]");
  std::sort(values.begin(), values.end());
  const double pos = q / 100.0 * (values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  const size_t hi = static_cast<size_t>(std::ceil(pos));
  if (lo == hi) return values[lo];
  const double frac = pos - lo;
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double WeightedMean(const std::vector<double>& values,
                    const std::vector<double>& weights) {
  CheckOrDie(values.size() == weights.size(), "WeightedMean: size mismatch");
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    CheckOrDie(weights[i] >= 0.0, "WeightedMean: negative weight");
    num += values[i] * weights[i];
    den += weights[i];
  }
  CheckOrDie(den > 0.0, "WeightedMean: zero total weight");
  return num / den;
}

}  // namespace paws
