#include "util/matrix.h"

#include <cmath>

namespace paws {

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  CheckOrDie(cols_ == other.rows(), "Matrix::Multiply shape mismatch");
  Matrix out(rows_, other.cols());
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* orow = other.Row(k);
      double* outrow = out.Row(r);
      for (int c = 0; c < other.cols(); ++c) outrow[c] += a * orow[c];
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  CheckOrDie(cols_ == static_cast<int>(v.size()),
             "Matrix::MultiplyVector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double sum = 0.0;
    for (int c = 0; c < cols_; ++c) sum += row[c] * v[c];
    out[r] = sum;
  }
  return out;
}

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const int n = a.rows();
  Matrix l(n, n);
  for (int j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0 || !std::isfinite(d)) {
      return Status::Internal("Cholesky: matrix is not positive definite");
    }
    l(j, j) = std::sqrt(d);
    const double inv = 1.0 / l(j, j);
    for (int i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s * inv;
    }
  }
  return l;
}

std::vector<double> ForwardSubstitute(const Matrix& l,
                                      const std::vector<double>& b) {
  const int n = l.rows();
  CheckOrDie(static_cast<int>(b.size()) == n, "ForwardSubstitute size");
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    double s = b[i];
    for (int k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  return y;
}

std::vector<double> BackSubstituteTranspose(const Matrix& l,
                                            const std::vector<double>& y) {
  const int n = l.rows();
  CheckOrDie(static_cast<int>(y.size()) == n, "BackSubstituteTranspose size");
  std::vector<double> x(n);
  for (int i = n - 1; i >= 0; --i) {
    double s = y[i];
    for (int k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

std::vector<double> CholeskySolve(const Matrix& l,
                                  const std::vector<double>& b) {
  return BackSubstituteTranspose(l, ForwardSubstitute(l, b));
}

double LogDetFromCholesky(const Matrix& l) {
  double s = 0.0;
  for (int i = 0; i < l.rows(); ++i) s += std::log(l(i, i));
  return s;
}

void Matrix::Save(ArchiveWriter* ar) const {
  ar->WriteI32(rows_);
  ar->WriteI32(cols_);
  ar->WriteDoubleVector(data_);
}

StatusOr<Matrix> Matrix::Load(ArchiveReader* ar) {
  int rows = 0, cols = 0;
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&rows));
  PAWS_RETURN_IF_ERROR(ar->ReadI32(&cols));
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("Matrix: negative shape in archive");
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  PAWS_RETURN_IF_ERROR(ar->ReadDoubleVector(&m.data_));
  if (m.data_.size() != static_cast<size_t>(rows) * cols) {
    return Status::InvalidArgument("Matrix: payload size does not match shape");
  }
  return m;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  CheckOrDie(a.size() == b.size(), "Dot size mismatch");
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace paws
