#include "util/archive.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace paws {

namespace {

constexpr char kMagic[4] = {'P', 'A', 'W', 'S'};
constexpr size_t kHeaderSize = 8;  // magic + container version
constexpr size_t kCrcSize = 4;

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

std::string FourCcName(uint32_t tag) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
    if (c >= 0x20 && c < 0x7f) {
      out += c;
    } else {
      static const char* hex = "0123456789abcdef";
      out += "\\x";
      out += hex[(c >> 4) & 0xf];
      out += hex[c & 0xf];
    }
  }
  return out;
}

uint32_t Crc32(const void* data, size_t n) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xffffffffu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

// ------------------------------------------------------------- writer

void ArchiveWriter::WriteU8(uint8_t v) {
  payload_.push_back(static_cast<char>(v));
}

void ArchiveWriter::WriteU32(uint32_t v) { AppendU32(&payload_, v); }

void ArchiveWriter::WriteU64(uint64_t v) { AppendU64(&payload_, v); }

void ArchiveWriter::WriteDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ArchiveWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  payload_.append(s);
}

void ArchiveWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU64(v.size());
  for (double x : v) WriteDouble(x);
}

void ArchiveWriter::WriteIntVector(const std::vector<int>& v) {
  WriteU64(v.size());
  for (int x : v) WriteI32(x);
}

void ArchiveWriter::WriteU8Vector(const std::vector<uint8_t>& v) {
  WriteU64(v.size());
  payload_.append(reinterpret_cast<const char*>(v.data()), v.size());
}

void ArchiveWriter::BeginSection(uint32_t tag) {
  WriteU32(tag);
  open_sections_.push_back(payload_.size());
  WriteU64(0);  // patched by EndSection
}

void ArchiveWriter::EndSection() {
  CheckOrDie(!open_sections_.empty(), "ArchiveWriter: EndSection unbalanced");
  const size_t at = open_sections_.back();
  open_sections_.pop_back();
  const uint64_t length = payload_.size() - at - 8;
  for (int i = 0; i < 8; ++i) {
    payload_[at + i] = static_cast<char>((length >> (8 * i)) & 0xff);
  }
}

std::string ArchiveWriter::Bytes() const {
  CheckOrDie(open_sections_.empty(),
             "ArchiveWriter: Bytes() with an open section");
  std::string out;
  out.reserve(kHeaderSize + payload_.size() + kCrcSize);
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kArchiveFormatVersion);
  out.append(payload_);
  AppendU32(&out, Crc32(out.data(), out.size()));
  return out;
}

Status ArchiveWriter::WriteFile(const std::string& path) const {
  return WriteStringToFile(Bytes(), path);
}

// ------------------------------------------------------------- reader

StatusOr<ArchiveReader> ArchiveReader::FromBytes(std::string bytes) {
  if (bytes.size() < kHeaderSize + kCrcSize) {
    return Status::InvalidArgument("archive: truncated (smaller than header)");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("archive: bad magic (not a PAWS archive)");
  }
  const uint32_t version = LoadU32(bytes.data() + 4);
  if (version != kArchiveFormatVersion) {
    return Status::InvalidArgument(
        "archive: unsupported container format version " +
        std::to_string(version) + " (expected " +
        std::to_string(kArchiveFormatVersion) + ")");
  }
  const uint32_t stored_crc = LoadU32(bytes.data() + bytes.size() - kCrcSize);
  const uint32_t actual_crc = Crc32(bytes.data(), bytes.size() - kCrcSize);
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("archive: CRC mismatch (corrupt file)");
  }
  const size_t end = bytes.size() - kCrcSize;
  return ArchiveReader(std::move(bytes), kHeaderSize, end);
}

StatusOr<ArchiveReader> ArchiveReader::FromFile(const std::string& path) {
  PAWS_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return FromBytes(std::move(bytes));
}

Status ArchiveReader::Need(size_t n) const {
  if (pos_ + n > Limit()) {
    return Status::InvalidArgument(
        "archive: truncated read (" + std::to_string(n) + " bytes needed, " +
        std::to_string(Limit() - pos_) + " available)");
  }
  return Status::OK();
}

Status ArchiveReader::ReadCount(size_t elem_size, uint64_t* out) {
  PAWS_RETURN_IF_ERROR(ReadU64(out));
  if (*out > (Limit() - pos_) / elem_size) {
    return Status::InvalidArgument(
        "archive: container length " + std::to_string(*out) +
        " overruns the remaining " + std::to_string(Limit() - pos_) +
        " bytes");
  }
  return Status::OK();
}

Status ArchiveReader::ReadU8(uint8_t* out) {
  PAWS_RETURN_IF_ERROR(Need(1));
  *out = static_cast<unsigned char>(bytes_[pos_++]);
  return Status::OK();
}

Status ArchiveReader::ReadBool(bool* out) {
  uint8_t v = 0;
  PAWS_RETURN_IF_ERROR(ReadU8(&v));
  if (v > 1) {
    return Status::InvalidArgument("archive: bool field holds " +
                                   std::to_string(v));
  }
  *out = v != 0;
  return Status::OK();
}

Status ArchiveReader::ReadU32(uint32_t* out) {
  PAWS_RETURN_IF_ERROR(Need(4));
  *out = LoadU32(bytes_.data() + pos_);
  pos_ += 4;
  return Status::OK();
}

Status ArchiveReader::ReadI32(int* out) {
  uint32_t v = 0;
  PAWS_RETURN_IF_ERROR(ReadU32(&v));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status ArchiveReader::ReadU64(uint64_t* out) {
  PAWS_RETURN_IF_ERROR(Need(8));
  *out = LoadU64(bytes_.data() + pos_);
  pos_ += 8;
  return Status::OK();
}

Status ArchiveReader::ReadI64(int64_t* out) {
  uint64_t v = 0;
  PAWS_RETURN_IF_ERROR(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ArchiveReader::ReadDouble(double* out) {
  uint64_t bits = 0;
  PAWS_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status ArchiveReader::ReadString(std::string* out) {
  uint64_t n = 0;
  PAWS_RETURN_IF_ERROR(ReadCount(1, &n));
  out->assign(bytes_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ArchiveReader::ReadDoubleVector(std::vector<double>* out) {
  uint64_t n = 0;
  PAWS_RETURN_IF_ERROR(ReadCount(8, &n));
  out->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    PAWS_RETURN_IF_ERROR(ReadDouble(&(*out)[i]));
  }
  return Status::OK();
}

Status ArchiveReader::ReadIntVector(std::vector<int>* out) {
  uint64_t n = 0;
  PAWS_RETURN_IF_ERROR(ReadCount(4, &n));
  out->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    PAWS_RETURN_IF_ERROR(ReadI32(&(*out)[i]));
  }
  return Status::OK();
}

Status ArchiveReader::ReadU8Vector(std::vector<uint8_t>* out) {
  uint64_t n = 0;
  PAWS_RETURN_IF_ERROR(ReadCount(1, &n));
  out->assign(bytes_.data() + pos_, bytes_.data() + pos_ + n);
  pos_ += n;
  return Status::OK();
}

Status ArchiveReader::EnterAnySection(uint32_t* tag) {
  PAWS_RETURN_IF_ERROR(ReadU32(tag));
  uint64_t length = 0;
  PAWS_RETURN_IF_ERROR(ReadCount(1, &length));
  section_ends_.push_back(pos_ + length);
  return Status::OK();
}

Status ArchiveReader::EnterSection(uint32_t expected_tag) {
  uint32_t tag = 0;
  PAWS_RETURN_IF_ERROR(EnterAnySection(&tag));
  if (tag != expected_tag) {
    section_ends_.pop_back();
    return Status::InvalidArgument("archive: expected section '" +
                                   FourCcName(expected_tag) + "', found '" +
                                   FourCcName(tag) + "'");
  }
  return Status::OK();
}

Status ArchiveReader::LeaveSection() {
  CheckOrDie(!section_ends_.empty(), "ArchiveReader: LeaveSection unbalanced");
  const size_t sec_end = section_ends_.back();
  if (pos_ != sec_end) {
    return Status::InvalidArgument(
        "archive: section not consumed exactly (" +
        std::to_string(sec_end - pos_) + " bytes left over)");
  }
  section_ends_.pop_back();
  return Status::OK();
}

Status ArchiveReader::ExpectEnd() const {
  if (!section_ends_.empty() || pos_ != end_) {
    return Status::InvalidArgument("archive: trailing bytes after payload");
  }
  return Status::OK();
}

// ------------------------------------------------------------- file IO

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  if (!f && !f.eof()) return Status::Internal("failed reading: " + path);
  return std::move(buffer).str();
}

Status WriteStringToFile(const std::string& data, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::Internal("cannot open for writing: " + path);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  f.flush();
  if (!f) return Status::Internal("failed writing: " + path);
  return Status::OK();
}

}  // namespace paws
