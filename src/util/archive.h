#ifndef PAWS_UTIL_ARCHIVE_H_
#define PAWS_UTIL_ARCHIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace paws {

/// Versioned, endian-safe binary archive — the one encoding layer shared by
/// model snapshots and dataset files. Design goals, in order:
///
///  1. *Bit-exact round trips.* Doubles are stored as their IEEE-754 bit
///     pattern, so a loaded model predicts bit-identically to the one that
///     was saved.
///  2. *Corruption is a Status, never UB.* Every read is bounds-checked
///     against the payload and the innermost open section; the whole file
///     carries a CRC-32 checked before any field is parsed; containers are
///     length-prefixed and their lengths validated against the remaining
///     bytes before any allocation.
///  3. *Versioned evolution.* The container header carries a format
///     version, and each serialized object writes its own schema version
///     inside its section, so old readers reject new files cleanly and new
///     readers can keep loading old ones.
///
/// Wire format (all integers little-endian):
///
///   bytes 0..3   magic "PAWS"
///   bytes 4..7   container format version (u32)
///   bytes 8..n-5 payload (sections and fields, see below)
///   last 4 bytes CRC-32 of everything before them
///
/// Sections are `tag (u32 fourcc) + payload length (u64) + payload`; they
/// nest, and the reader verifies both the tag and that the section was
/// consumed exactly. Strings and vectors are `count (u64) + elements`.

/// Container format version written into every archive header. Bump when
/// the *container* layout changes (magic/CRC/section framing); per-object
/// schema changes bump that object's own version field instead.
constexpr uint32_t kArchiveFormatVersion = 1;

/// Packs a four-character section/type tag, e.g. FourCc("TREE").
constexpr uint32_t FourCc(const char (&s)[5]) {
  return static_cast<uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

/// Human-readable form of a fourcc tag for error messages, e.g. "TREE"
/// (non-printable bytes rendered as hex).
std::string FourCcName(uint32_t tag);

/// CRC-32 (IEEE 802.3 polynomial) of `n` bytes — the archive's trailer
/// checksum, exposed for callers that checksum auxiliary payloads.
uint32_t Crc32(const void* data, size_t n);

/// Append-only archive builder. Write fields in order, bracket logical
/// objects with Begin/EndSection, then Bytes()/WriteFile() to emit the
/// framed, checksummed archive. Writing cannot fail until file IO.
class ArchiveWriter {
 public:
  ArchiveWriter() = default;

  void WriteU8(uint8_t v);
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteU32(uint32_t v);
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  /// IEEE-754 bit pattern; round trips NaNs and signed zeros exactly.
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteDoubleVector(const std::vector<double>& v);
  void WriteIntVector(const std::vector<int>& v);
  void WriteU8Vector(const std::vector<uint8_t>& v);

  /// Opens a `tag`-labelled section; its byte length is patched in by the
  /// matching EndSection. Sections nest.
  void BeginSection(uint32_t tag);
  void EndSection();

  /// The complete archive (header + payload + CRC). All sections must be
  /// closed. The writer remains usable (Bytes is a pure serialization).
  std::string Bytes() const;

  /// Writes Bytes() to `path` (created or truncated, binary).
  Status WriteFile(const std::string& path) const;

  size_t payload_size() const { return payload_.size(); }

 private:
  std::string payload_;
  std::vector<size_t> open_sections_;  // offsets of length placeholders
};

/// Cursor over a validated archive. Construction verifies magic, container
/// version and CRC; every Read* checks bounds against the payload and the
/// innermost open section, so malformed input surfaces as Status.
class ArchiveReader {
 public:
  /// Parses and validates an archive from memory (takes ownership of the
  /// buffer; reads never copy it again).
  static StatusOr<ArchiveReader> FromBytes(std::string bytes);
  /// Reads and validates an archive file.
  static StatusOr<ArchiveReader> FromFile(const std::string& path);

  Status ReadU8(uint8_t* out);
  Status ReadBool(bool* out);
  Status ReadU32(uint32_t* out);
  Status ReadI32(int* out);
  Status ReadU64(uint64_t* out);
  Status ReadI64(int64_t* out);
  Status ReadDouble(double* out);
  Status ReadString(std::string* out);
  Status ReadDoubleVector(std::vector<double>* out);
  Status ReadIntVector(std::vector<int>* out);
  Status ReadU8Vector(std::vector<uint8_t>* out);

  /// Enters a section, failing if the tag is not `expected_tag` or the
  /// recorded length overruns the enclosing scope.
  Status EnterSection(uint32_t expected_tag);
  /// Enters whatever section comes next and reports its tag — the
  /// polymorphic-load entry point (read tag, dispatch on it).
  Status EnterAnySection(uint32_t* tag);
  /// Leaves the innermost section, failing unless it was consumed exactly.
  Status LeaveSection();

  /// OK iff the payload was consumed exactly (no trailing garbage).
  Status ExpectEnd() const;

  /// Bytes left in the innermost open section (or the whole payload).
  size_t remaining() const { return Limit() - pos_; }

 private:
  explicit ArchiveReader(std::string bytes, size_t payload_begin,
                         size_t payload_end)
      : bytes_(std::move(bytes)), pos_(payload_begin), end_(payload_end) {}

  size_t Limit() const {
    return section_ends_.empty() ? end_ : section_ends_.back();
  }
  /// Fails with InvalidArgument unless `n` more bytes fit in scope.
  Status Need(size_t n) const;
  /// Reads a u64 element count and validates count * elem_size bytes fit.
  Status ReadCount(size_t elem_size, uint64_t* out);

  std::string bytes_;
  size_t pos_ = 0;
  size_t end_ = 0;
  std::vector<size_t> section_ends_;
};

/// Whole-file IO shared by the archive and the CSV dataset codecs.
StatusOr<std::string> ReadFileToString(const std::string& path);
Status WriteStringToFile(const std::string& data, const std::string& path);

}  // namespace paws

#endif  // PAWS_UTIL_ARCHIVE_H_
