#ifndef PAWS_UTIL_LRU_CACHE_H_
#define PAWS_UTIL_LRU_CACHE_H_

#include <list>
#include <unordered_map>
#include <utility>

#include "util/status.h"

namespace paws {

/// Small bounded map with least-recently-used eviction — the cache shape
/// behind ParkService's per-park store of recently served risk maps. Not
/// thread-safe: callers guard it with their own mutex (the service keeps
/// the critical section to a lookup/insert; values are shared_ptrs so
/// evicted entries stay alive for readers already holding them).
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    CheckOrDie(capacity > 0, "LruCache: capacity must be positive");
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }

  /// Returns the cached value and marks it most-recently-used, or nullptr.
  /// The pointer is valid until the next non-const call.
  const V* Get(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    items_.splice(items_.begin(), items_, it->second);
    return &it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
  /// beyond capacity.
  void Put(const K& key, V value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      items_.splice(items_.begin(), items_, it->second);
      return;
    }
    items_.emplace_front(key, std::move(value));
    index_.emplace(key, items_.begin());
    if (index_.size() > capacity_) {
      index_.erase(items_.back().first);
      items_.pop_back();
    }
  }

  void Clear() {
    items_.clear();
    index_.clear();
  }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> items_;  // front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_;
};

}  // namespace paws

#endif  // PAWS_UTIL_LRU_CACHE_H_
