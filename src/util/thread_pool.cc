#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/status.h"

namespace paws {

namespace {

/// True on pool worker threads and on a submitter thread while it executes
/// its job's chunks; nested parallel regions run inline rather than
/// deadlocking on the (single-job) pool.
thread_local bool tls_in_parallel_region = false;

}  // namespace

int ParallelismConfig::ResolveNumThreads() const {
  if (num_threads > 0) return num_threads;
  CheckOrDie(num_threads == 0, "ParallelismConfig: num_threads must be >= 0");
  if (const char* env = std::getenv("PAWS_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_workers) {
  CheckOrDie(num_workers >= 0, "ThreadPool: num_workers must be >= 0");
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunChunks(Job* job) {
  for (;;) {
    const std::int64_t lo = job->next.fetch_add(job->grain);
    if (lo >= job->end) break;
    const std::int64_t hi = std::min(lo + job->grain, job->end);
    try {
      (*job->fn)(lo, hi);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job->error_mu);
        if (!job->error) job->error = std::current_exception();
      }
      job->next.store(job->end);  // cancel remaining chunks
      break;
    }
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_parallel_region = true;
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || job_seq_ != seen; });
      if (shutdown_) return;
      seen = job_seq_;
      job = job_;
    }
    // Every worker must ack every job (so the submitter knows when the job
    // state can be torn down), but only those that win a slot run chunks.
    // Waking all workers even for small max_threads trades some wakeup
    // overhead for a teardown protocol simple enough to sanitize; jobs
    // small enough to care run inline via the grain check instead.
    if (job->worker_slots.fetch_sub(1) > 0) RunChunks(job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_unfinished_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    std::int64_t begin, std::int64_t end, std::int64_t grain, int max_threads,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  CheckOrDie(grain > 0, "ThreadPool::ParallelFor: grain must be > 0");
  if (begin >= end) return;
  // Serial, nested, worker-free, or single-chunk calls run inline: one
  // fn(begin, end) invocation, exactly the pre-pool code path.
  if (max_threads <= 1 || tls_in_parallel_region || workers_.empty() ||
      end - begin <= grain) {
    fn(begin, end);
    return;
  }
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  Job job;
  job.fn = &fn;
  job.next.store(begin);
  job.end = end;
  job.grain = grain;
  job.worker_slots.store(std::min<int>(max_threads - 1, num_workers()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_seq_;
    workers_unfinished_ = num_workers();
  }
  work_cv_.notify_all();
  // The calling thread always participates; while it runs chunks, nested
  // ParallelFor calls from those chunks must go inline (the pool runs one
  // job at a time, and submit_mu_ is already held by this thread).
  tls_in_parallel_region = true;
  RunChunks(&job);
  tls_in_parallel_region = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_unfinished_ == 0; });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::Shared() {
  // hardware_concurrency() - 1 workers (the submitter is the +1), but
  // always at least one worker so explicit num_threads > 1 pins exercise
  // real cross-thread execution even on single-core machines.
  static ThreadPool* pool = new ThreadPool(std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()) - 1));
  return *pool;
}

void ParallelFor(const ParallelismConfig& config, std::int64_t begin,
                 std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn) {
  CheckOrDie(grain > 0, "ParallelFor: grain must be > 0");
  if (begin >= end) return;
  const int max_threads = config.ResolveNumThreads();
  // Serial and single-chunk calls never touch (or lazily construct) the
  // shared pool: a process pinned to one thread stays single-threaded.
  if (max_threads <= 1 || end - begin <= grain) {
    fn(begin, end);
    return;
  }
  ThreadPool::Shared().ParallelFor(begin, end, grain, max_threads, fn);
}

}  // namespace paws
