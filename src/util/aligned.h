#ifndef PAWS_UTIL_ALIGNED_H_
#define PAWS_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>

namespace paws {

/// Minimal over-aligning allocator for std::vector: every allocation starts
/// on an `Alignment`-byte boundary. The compiled node pools use this so
/// SIMD gathers and whole-cache-line node groups never straddle lines —
/// vector's default allocator only guarantees alignof(T).
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's own requirement");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), static_cast<std::align_val_t>(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, static_cast<std::align_val_t>(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace paws

#endif  // PAWS_UTIL_ALIGNED_H_
