#ifndef PAWS_UTIL_STATUS_H_
#define PAWS_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace paws {

/// Error categories used across the PAWS library. Modeled after the
/// Arrow/RocksDB status idiom: functions that can fail return a Status (or
/// StatusOr<T>) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kResourceExhausted,  // e.g. MILP node limit reached without proof
  kInfeasible,         // LP/MILP has no feasible solution
  kUnbounded,          // LP objective is unbounded
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an error (code + message).
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Aborts the process with `msg` if `condition` is false. Used for internal
/// invariants that indicate programmer error rather than bad input.
void CheckOrDie(bool condition, const char* msg);

/// First non-OK status in `statuses`, or OK. The deterministic way to
/// surface an error out of a parallel loop that collected one Status per
/// index: the reported error does not depend on execution order.
Status FirstError(const std::vector<Status>& statuses);

/// Either a value of type T or an error Status. Accessing value() on an
/// error aborts with the status message, so callers must check ok() first
/// (Google style: no exceptions).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse: `return result;` / `return Status::InvalidArgument(...)`.
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOrDie(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    CheckOrDie(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    CheckOrDie(ok(), status_.message().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

#define PAWS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::paws::Status _paws_status = (expr);       \
    if (!_paws_status.ok()) return _paws_status; \
  } while (0)

#define PAWS_CONCAT_IMPL(a, b) a##b
#define PAWS_CONCAT(a, b) PAWS_CONCAT_IMPL(a, b)

#define PAWS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define PAWS_ASSIGN_OR_RETURN(lhs, expr) \
  PAWS_ASSIGN_OR_RETURN_IMPL(PAWS_CONCAT(_paws_statusor_, __LINE__), lhs, expr)

}  // namespace paws

#endif  // PAWS_UTIL_STATUS_H_
