#ifndef PAWS_UTIL_FEATURE_MATRIX_H_
#define PAWS_UTIL_FEATURE_MATRIX_H_

#include <vector>

#include "util/status.h"

namespace paws {

/// Non-owning, span-style view over a row-major block of feature rows.
/// The batch prediction APIs take this view so callers can hand over
/// Dataset storage, a scratch buffer, or a single feature vector without
/// copying rows. The viewed buffer must outlive the view.
class FeatureMatrixView {
 public:
  FeatureMatrixView() = default;
  FeatureMatrixView(const double* data, int rows, int cols)
      : data_(data), rows_(rows), cols_(cols) {
    CheckOrDie(rows >= 0 && cols > 0, "FeatureMatrixView: bad shape");
    CheckOrDie(rows == 0 || data != nullptr,
               "FeatureMatrixView: null data with rows > 0");
  }

  /// View over a flat row-major buffer; flat.size() must be a multiple of
  /// `cols`.
  static FeatureMatrixView FromFlat(const std::vector<double>& flat,
                                    int cols) {
    CheckOrDie(cols > 0 && flat.size() % cols == 0,
               "FeatureMatrixView::FromFlat: size not a multiple of cols");
    return FeatureMatrixView(flat.data(), static_cast<int>(flat.size()) / cols,
                             cols);
  }

  /// One-row view over a single feature vector.
  static FeatureMatrixView OfRow(const std::vector<double>& x) {
    return FeatureMatrixView(x.data(), 1, static_cast<int>(x.size()));
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// Pointer to row i (contiguous, cols() doubles).
  const double* Row(int i) const {
    CheckOrDie(i >= 0 && i < rows_, "FeatureMatrixView::Row out of bounds");
    return data_ + static_cast<size_t>(i) * cols_;
  }

 private:
  const double* data_ = nullptr;
  int rows_ = 0;
  int cols_ = 0;
};

/// Packs the given rows of `src` contiguously into `*buf` (overwritten)
/// and returns a view over the packed block; `*buf` must outlive the view.
/// The shared gather behind per-learner qualified-row batching and CV fold
/// scoring.
inline FeatureMatrixView GatherRows(const FeatureMatrixView& src,
                                    const std::vector<int>& rows,
                                    std::vector<double>* buf) {
  buf->clear();
  buf->reserve(rows.size() * src.cols());
  for (int r : rows) {
    const double* row = src.Row(r);
    buf->insert(buf->end(), row, row + src.cols());
  }
  return FeatureMatrixView::FromFlat(*buf, src.cols());
}

}  // namespace paws

#endif  // PAWS_UTIL_FEATURE_MATRIX_H_
