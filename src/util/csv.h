#ifndef PAWS_UTIL_CSV_H_
#define PAWS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace paws {

/// Minimal CSV writer used by the benchmark harnesses to dump series that
/// correspond to the paper's figures. Values are written with '%.6g'.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a data row; must match the header width.
  void AddRow(const std::vector<double>& row);

  /// Appends a row of preformatted strings; must match the header width.
  void AddTextRow(const std::vector<std::string>& row);

  /// Serializes header + rows to CSV text.
  std::string ToString() const;

  /// Writes the CSV to `path`, creating or truncating the file.
  Status WriteFile(const std::string& path) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like printf("%.*g"). Helper shared by CSV and table
/// printers.
std::string FormatDouble(double v, int precision = 6);

}  // namespace paws

#endif  // PAWS_UTIL_CSV_H_
