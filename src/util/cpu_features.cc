#include "util/cpu_features.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace paws {

namespace {

// The gathered traversals are written with GCC/Clang target attributes
// against the x86 intrinsic set; anything else serves scalar.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
SimdTier ProbeHardware() {
  // __builtin_cpu_supports consults CPUID (and XGETBV for OS state), so a
  // "yes" means the instructions are actually executable, not merely
  // advertised. avx512f covers every instruction the 512-bit walk uses
  // (vpgatherqq/vgatherqpd and the mask ops are all F-level).
  if (__builtin_cpu_supports("avx512f")) return SimdTier::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
  return SimdTier::kScalar;
}
#else
SimdTier ProbeHardware() { return SimdTier::kScalar; }
#endif

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool ParseSimdTier(const char* name, SimdTier* out) {
  if (name == nullptr) return false;
  for (const SimdTier tier :
       {SimdTier::kScalar, SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (std::strcmp(name, SimdTierName(tier)) == 0) {
      *out = tier;
      return true;
    }
  }
  return false;
}

SimdTier DetectSimdTier() {
  static const SimdTier detected = ProbeHardware();
  return detected;
}

SimdTier ResolveSimdTier(const char* force, SimdTier detected) {
  SimdTier forced = SimdTier::kScalar;
  if (!ParseSimdTier(force, &forced)) return detected;
  return std::min(forced, detected);
}

SimdTier ActiveSimdTier() {
  return ResolveSimdTier(std::getenv("PAWS_FORCE_BACKEND"), DetectSimdTier());
}

}  // namespace paws
