#include "util/special.h"

#include <cmath>
#include <limits>

#include "util/status.h"

namespace paws {

double LogGamma(double x) {
  CheckOrDie(x > 0.0, "LogGamma requires x > 0");
  // Lanczos approximation, g = 7, n = 9.
  static const double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoef[0];
  for (int i = 1; i < 9; ++i) sum += kCoef[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

namespace {

// Series representation of P(a, x), converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued-fraction representation of Q(a, x), for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  CheckOrDie(a > 0.0 && x >= 0.0, "RegularizedGammaP requires a > 0, x >= 0");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  CheckOrDie(a > 0.0 && x >= 0.0, "RegularizedGammaQ requires a > 0, x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquaredSurvival(double x, int degrees_of_freedom) {
  CheckOrDie(degrees_of_freedom > 0, "chi-squared dof must be positive");
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(0.5 * degrees_of_freedom, 0.5 * x);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double Log1pExp(double x) {
  if (x > 35.0) return x;
  if (x < -35.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double Erf(double x) { return std::erf(x); }

}  // namespace paws
