#!/usr/bin/env python3
"""Documentation consistency checks (CI `docs` job).

Two checks, both stdlib-only:

1. Relative markdown links in README.md and docs/*.md must resolve to
   files that exist in the repo (anchors are stripped; absolute URLs and
   mailto: links are skipped).
2. Drift guard: docs/WIRE_PROTOCOL.md is the normative wire spec, so
   every enumerator of `enum class Opcode` (src/net/wire.h) and of
   `enum class StatusCode` (src/util/status.h) must appear in it by
   exact name (e.g. `kRiskMap`, `kNotFound`). Adding an opcode or a
   status code without documenting it fails CI.
3. Backend drift guard: docs/ARCHITECTURE.md documents the scoring
   backends and their SIMD dispatch tiers, so every name in
   `kScoringBackendNames` (src/ml/scoring_backend.h) must appear in it
   verbatim (e.g. `compiled-dtb-avx512`). Adding a backend or a
   dispatch tier without documenting it fails CI.

Exit status: 0 if everything checks out, 1 otherwise (each problem is
printed on its own line).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — excluding images' extra '!' does not matter for
# existence checks, so one pattern covers links and images alike.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def markdown_files():
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_links():
    problems = []
    for md in markdown_files():
        text = md.read_text(encoding="utf-8")
        # Code is illustrative, not navigable: drop fenced blocks and
        # inline spans (`preds.g[v](c)` would otherwise parse as a link).
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        text = re.sub(r"`[^`\n]*`", "", text)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def enum_members(header, enum_name):
    """Return the kSomething enumerator names of one enum class."""
    text = (REPO / header).read_text(encoding="utf-8")
    match = re.search(
        r"enum\s+class\s+" + re.escape(enum_name) + r"\b[^{]*\{(.*?)\}",
        text,
        flags=re.DOTALL,
    )
    if match is None:
        raise SystemExit(f"error: enum class {enum_name} not found in {header}")
    body = re.sub(r"//[^\n]*", "", match.group(1))  # strip comments
    members = re.findall(r"\b(k\w+)\b\s*(?:=\s*\d+\s*)?(?:,|$)", body)
    if not members:
        raise SystemExit(f"error: no enumerators parsed for {enum_name}")
    return members


def check_wire_doc():
    problems = []
    doc_path = REPO / "docs" / "WIRE_PROTOCOL.md"
    if not doc_path.is_file():
        return ["docs/WIRE_PROTOCOL.md is missing"]
    doc = doc_path.read_text(encoding="utf-8")
    for header, enum_name in (
        ("src/net/wire.h", "Opcode"),
        ("src/util/status.h", "StatusCode"),
    ):
        for member in enum_members(header, enum_name):
            if member not in doc:
                problems.append(
                    f"docs/WIRE_PROTOCOL.md: {enum_name} entry `{member}` "
                    f"({header}) is undocumented"
                )
    return problems


def scoring_backend_names():
    """Return the string literals of kScoringBackendNames."""
    header = "src/ml/scoring_backend.h"
    text = (REPO / header).read_text(encoding="utf-8")
    match = re.search(
        r"kScoringBackendNames\[\]\s*=\s*\{(.*?)\}", text, flags=re.DOTALL
    )
    if match is None:
        raise SystemExit(f"error: kScoringBackendNames not found in {header}")
    names = re.findall(r'"([^"]+)"', match.group(1))
    if not names:
        raise SystemExit("error: no names parsed from kScoringBackendNames")
    return names


def check_backend_doc():
    problems = []
    doc_path = REPO / "docs" / "ARCHITECTURE.md"
    if not doc_path.is_file():
        return ["docs/ARCHITECTURE.md is missing"]
    doc = doc_path.read_text(encoding="utf-8")
    for name in scoring_backend_names():
        # Require the exact backend string; `compiled-dtb` alone must not
        # satisfy `compiled-dtb-avx512`, so match with word-ish boundaries.
        if re.search(r"(?<![\w-])" + re.escape(name) + r"(?![\w-])", doc) is None:
            problems.append(
                f"docs/ARCHITECTURE.md: scoring backend `{name}` "
                f"(src/ml/scoring_backend.h) is undocumented"
            )
    return problems


def main():
    problems = check_links() + check_wire_doc() + check_backend_doc()
    for p in problems:
        print(p)
    if problems:
        print(f"{len(problems)} documentation problem(s).")
        return 1
    n_files = len(markdown_files())
    print(f"docs OK: {n_files} markdown files, links resolve, "
          f"WIRE_PROTOCOL.md covers every opcode and status code, "
          f"ARCHITECTURE.md covers every scoring backend.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
