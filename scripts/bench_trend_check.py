#!/usr/bin/env python3
"""Compares two BENCH_fig9.json artifacts and flags perf regressions.

Usage:
  bench_trend_check.py PREV.json CURR.json
      [--metric compiled_forest.risk_map.compiled_ns_per_cell]
      [--warn-pct 20] [--fail-pct 50]

The metric is a dotted path into the JSON document; higher is worse
(nanoseconds, milliseconds). A regression beyond --warn-pct emits a
GitHub-annotation warning; beyond --fail-pct the script exits non-zero
and fails the job. Smoke-sized benches on shared CI runners are noisy,
hence the two-level threshold: warn early, fail only on something no
noise plausibly explains.

Missing files or metrics exit 0 with a note (first run after a schema
change must not break CI).
"""

import argparse
import json
import sys


def lookup(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("prev")
    parser.add_argument("curr")
    parser.add_argument(
        "--metric", default="compiled_forest.risk_map.compiled_ns_per_cell"
    )
    parser.add_argument("--warn-pct", type=float, default=20.0)
    parser.add_argument("--fail-pct", type=float, default=50.0)
    args = parser.parse_args()

    docs = []
    for path in (args.prev, args.curr):
        try:
            with open(path) as f:
                docs.append(json.load(f))
        except (OSError, ValueError) as err:
            print(f"bench-trend: cannot read {path} ({err}); skipping check")
            return 0

    prev_value = lookup(docs[0], args.metric)
    curr_value = lookup(docs[1], args.metric)
    if prev_value is None or curr_value is None or prev_value <= 0:
        print(
            f"bench-trend: metric '{args.metric}' missing or non-positive "
            f"(prev={prev_value}, curr={curr_value}); skipping check"
        )
        return 0

    change_pct = 100.0 * (curr_value - prev_value) / prev_value
    summary = (
        f"{args.metric}: {prev_value:.2f} -> {curr_value:.2f} "
        f"({change_pct:+.1f}%)"
    )
    if change_pct > args.fail_pct:
        print(f"::error::bench-trend regression beyond {args.fail_pct}%: "
              f"{summary}")
        return 1
    if change_pct > args.warn_pct:
        print(f"::warning::bench-trend regression beyond {args.warn_pct}%: "
              f"{summary}")
        return 0
    print(f"bench-trend OK: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
